//! Shared machinery of the two ADI solvers (BT and SP): the 5-component 3-D
//! grid state, the explicit right-hand-side evaluation, and the final
//! add-and-norm step.
//!
//! Both codes integrate a damped diffusion system
//! `du/dt = kappa * lap(u) + forcing` with an approximately factored
//! implicit scheme: `compute_rhs` forms the explicit update
//! `rhs = r * lap(u) + dt * forcing` (periodic boundaries), the three
//! directional solves apply `(I - A_x)^-1`, `(I - A_y)^-1`, `(I - A_z)^-1`
//! to `rhs` in place, and `add` applies `u += rhs`. As the field approaches
//! the steady state `kappa * lap(u) = -forcing`, the update norm decays —
//! the property the benchmarks' self-verification checks.
//!
//! The arrays `u`, `rhs` and `forcing` are exactly the three hot arrays the
//! paper's compiler instrumentation registers for BT (its Figure 2).

use crate::common::Grid3;
use crate::model::LoopModel;
use ccnuma::{AccessKind, SimArray};
use omp::{Par, Runtime, Schedule};
use upmlib::UpmEngine;

/// Axis of a directional ADI sweep — the access-model mirror of the
/// private `Axis` enums in `bt`/`sp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    /// Line solves along x (parallel over z).
    X,
    /// Line solves along y (parallel over z).
    Y,
    /// Line solves along z (parallel over y — the slab-crossing phase).
    Z,
}

/// Grid state shared by BT and SP.
pub struct AdiState {
    /// Grid geometry (5 components).
    pub grid: Grid3,
    /// The solution field.
    pub u: SimArray<f64>,
    /// The update / solver workspace.
    pub rhs: SimArray<f64>,
    /// The forcing term.
    pub forcing: SimArray<f64>,
}

impl AdiState {
    /// Allocate an `nx x ny x nz x 5` state with a smooth deterministic
    /// initial field and forcing.
    pub fn new(rt: &mut Runtime, prefix: &str, nx: usize, ny: usize, nz: usize) -> Self {
        let grid = Grid3 {
            nx,
            ny,
            nz,
            comps: 5,
        };
        let team = rt.threads();
        let m = rt.machine_mut();
        let len = grid.len();
        let wave = move |c: usize, x: usize, y: usize, z: usize| {
            let (fx, fy, fz) = (
                2.0 * std::f64::consts::PI * x as f64 / nx as f64,
                2.0 * std::f64::consts::PI * y as f64 / ny as f64,
                2.0 * std::f64::consts::PI * z as f64 / nz as f64,
            );
            0.4 * (fx + c as f64).sin() * (fy * (1.0 + c as f64 * 0.1)).cos()
                + 0.2 * (fz + 0.3 * c as f64).sin()
        };
        let de_idx = move |i: usize| {
            let c = i % 5;
            let x = (i / 5) % nx;
            let y = (i / (5 * nx)) % ny;
            let z = i / (5 * nx * ny);
            (c, x, y, z)
        };
        // The tuned NAS codes pad the grid arrays so that page boundaries
        // align with the worksharing decomposition. Align each page to one
        // (z-plane, y-slab) tile: x/y sweeps (parallel over z) keep whole
        // planes local, and the z sweep (parallel over y) sees pages owned
        // by exactly one thread — the alignment that makes both first-touch
        // and page-grain (re)distribution effective. Falls back to dense
        // layout when ny is not divisible by the team size.
        let chunks = if ny.is_multiple_of(team) {
            Some(nz * team)
        } else {
            None
        };
        let alloc = |m: &mut ccnuma::Machine, name: String| match chunks {
            Some(chunks) => SimArray::chunk_aligned(m, &name, len, chunks, 0.0),
            None => SimArray::new(m, &name, len, 0.0),
        };
        let u = alloc(m, format!("{prefix}.u"));
        let rhs = alloc(m, format!("{prefix}.rhs"));
        let forcing = alloc(m, format!("{prefix}.forcing"));
        for i in 0..len {
            let (c, x, y, z) = de_idx(i);
            u.poke(i, 1.0 + wave(c, x, y, z));
            forcing.poke(i, 0.05 * wave(c + 2, y, z, x));
        }
        Self {
            grid,
            u,
            rhs,
            forcing,
        }
    }

    /// Register the three hot arrays (the paper's BT instrumentation).
    pub fn register_hot(&self, upm: &mut UpmEngine) {
        upm.memrefcnt(&self.u);
        upm.memrefcnt(&self.rhs);
        upm.memrefcnt(&self.forcing);
    }

    /// Reset `u` to its deterministic initial field (host-only, used when
    /// discarding the cold-start iteration's numeric effects).
    pub fn reset(&self, initial_u: &[f64]) {
        for (i, &v) in initial_u.iter().enumerate() {
            self.u.poke(i, v);
        }
        self.rhs.fill(0.0);
    }

    /// `rhs = r * lap(u) + forcing_scale * forcing`, periodic boundaries,
    /// parallel over z-slabs. This is the `compute_rhs` phase of BT/SP.
    pub fn compute_rhs(&self, rt: &mut Runtime, r: f64, forcing_scale: f64) {
        let g = self.grid;
        let (u, rhs, forcing) = (&self.u, &self.rhs, &self.forcing);
        rt.parallel_for(g.nz, Schedule::Static, |par, z| {
            let zm = (z + g.nz - 1) % g.nz;
            let zp = (z + 1) % g.nz;
            for y in 0..g.ny {
                let ym = (y + g.ny - 1) % g.ny;
                let yp = (y + 1) % g.ny;
                for x in 0..g.nx {
                    let xm = (x + g.nx - 1) % g.nx;
                    let xp = (x + 1) % g.nx;
                    for c in 0..5 {
                        let center = par.get(u, g.idx(c, x, y, z));
                        let lap = par.get(u, g.idx(c, xm, y, z))
                            + par.get(u, g.idx(c, xp, y, z))
                            + par.get(u, g.idx(c, x, ym, z))
                            + par.get(u, g.idx(c, x, yp, z))
                            + par.get(u, g.idx(c, x, y, zm))
                            + par.get(u, g.idx(c, x, y, zp))
                            - 6.0 * center;
                        let f = par.get(forcing, g.idx(c, x, y, z));
                        par.set(rhs, g.idx(c, x, y, z), r * lap + forcing_scale * f);
                        par.flops(10);
                    }
                }
            }
        });
    }

    /// `u += rhs`, returning the L2 norm of the applied update (the `add`
    /// phase plus the NAS-style rhs-norm diagnostic).
    pub fn add_and_norm(&self, rt: &mut Runtime) -> f64 {
        let g = self.grid;
        let (u, rhs) = (&self.u, &self.rhs);
        let (sum, _) = rt.parallel_reduce(
            g.nz,
            Schedule::Static,
            0.0,
            |par, z, acc| {
                let mut s = 0.0;
                for y in 0..g.ny {
                    for x in 0..g.nx {
                        for c in 0..5 {
                            let i = g.idx(c, x, y, z);
                            let d = par.get(rhs, i);
                            par.update(u, i, |v| v + d);
                            s += d * d;
                        }
                    }
                }
                par.flops(3 * (g.nx * g.ny * 5) as u64);
                acc + s
            },
            |a, b| a + b,
        );
        (sum / g.len() as f64).sqrt()
    }

    /// Read the 5 components of `u` at a grid point into an array.
    #[inline(always)]
    pub fn read_u5(&self, par: &mut Par<'_>, x: usize, y: usize, z: usize) -> [f64; 5] {
        let g = self.grid;
        std::array::from_fn(|c| par.get(&self.u, g.idx(c, x, y, z)))
    }

    /// Static access model of [`AdiState::compute_rhs`] (exactly the reads
    /// and writes the simulated loop body performs per z-plane).
    pub fn compute_rhs_model(&self) -> LoopModel {
        let g = self.grid;
        let (u, rhs, forcing) = (self.u.layout(), self.rhs.layout(), self.forcing.layout());
        LoopModel::parallel("compute_rhs", g.nz, Schedule::Static, move |z, emit| {
            let zm = (z + g.nz - 1) % g.nz;
            let zp = (z + 1) % g.nz;
            for y in 0..g.ny {
                let ym = (y + g.ny - 1) % g.ny;
                let yp = (y + 1) % g.ny;
                for x in 0..g.nx {
                    let xm = (x + g.nx - 1) % g.nx;
                    let xp = (x + 1) % g.nx;
                    for c in 0..5 {
                        for i in [
                            g.idx(c, x, y, z),
                            g.idx(c, xm, y, z),
                            g.idx(c, xp, y, z),
                            g.idx(c, x, ym, z),
                            g.idx(c, x, yp, z),
                            g.idx(c, x, y, zm),
                            g.idx(c, x, y, zp),
                        ] {
                            emit(u.vaddr_of(i), AccessKind::Read);
                        }
                        emit(forcing.vaddr_of(g.idx(c, x, y, z)), AccessKind::Read);
                        emit(rhs.vaddr_of(g.idx(c, x, y, z)), AccessKind::Write);
                    }
                }
            }
        })
    }

    /// Static access model of a directional sweep. BT's block solver and
    /// SP's scalar solver gather and scatter exactly the same element set
    /// per (outer, inner) line — all 5 components of `u` (read) and `rhs`
    /// (read, then written back) along the line — so one model serves both.
    pub fn sweep_model(&self, name: &str, axis: SweepAxis) -> LoopModel {
        let g = self.grid;
        let (u, rhs) = (self.u.layout(), self.rhs.layout());
        let (n, outer_extent, inner_extent) = match axis {
            SweepAxis::X => (g.nx, g.nz, g.ny),
            SweepAxis::Y => (g.ny, g.nz, g.nx),
            SweepAxis::Z => (g.nz, g.ny, g.nx),
        };
        LoopModel::parallel(name, outer_extent, Schedule::Static, move |outer, emit| {
            for inner in 0..inner_extent {
                let coord = |k: usize| -> (usize, usize, usize) {
                    match axis {
                        SweepAxis::X => (k, inner, outer),
                        SweepAxis::Y => (inner, k, outer),
                        SweepAxis::Z => (inner, outer, k),
                    }
                };
                for k in 0..n {
                    let (x, y, z) = coord(k);
                    for c in 0..5 {
                        emit(u.vaddr_of(g.idx(c, x, y, z)), AccessKind::Read);
                        emit(rhs.vaddr_of(g.idx(c, x, y, z)), AccessKind::Read);
                    }
                }
                for k in 0..n {
                    let (x, y, z) = coord(k);
                    for c in 0..5 {
                        emit(rhs.vaddr_of(g.idx(c, x, y, z)), AccessKind::Write);
                    }
                }
            }
        })
    }

    /// Static access model of [`AdiState::add_and_norm`] (a reduction over
    /// z-planes: read `rhs`, read-modify-write `u`).
    pub fn add_and_norm_model(&self) -> LoopModel {
        let g = self.grid;
        let (u, rhs) = (self.u.layout(), self.rhs.layout());
        LoopModel::reduction("add", g.nz, Schedule::Static, move |z, emit| {
            for y in 0..g.ny {
                for x in 0..g.nx {
                    for c in 0..5 {
                        let i = g.idx(c, x, y, z);
                        emit(rhs.vaddr_of(i), AccessKind::Read);
                        emit(u.vaddr_of(i), AccessKind::Read);
                        emit(u.vaddr_of(i), AccessKind::Write);
                    }
                }
            }
        })
    }

    /// The phase sequence of one BT/SP time step (`compute_rhs`, the three
    /// sweeps with the z-sweep crossing slabs, `add`), with every phase's
    /// loop repeated `phase_scale` times as in the Figure 6 experiment.
    pub fn step_phases(&self, phase_scale: usize) -> Vec<crate::model::PhaseModel> {
        use crate::model::PhaseModel;
        let rep = |f: &dyn Fn() -> LoopModel| (0..phase_scale).map(|_| f()).collect();
        vec![
            PhaseModel::new("compute_rhs", rep(&|| self.compute_rhs_model())),
            PhaseModel::new(
                "x_solve",
                rep(&|| self.sweep_model("x_solve", SweepAxis::X)),
            ),
            PhaseModel::new(
                "y_solve",
                rep(&|| self.sweep_model("y_solve", SweepAxis::Y)),
            ),
            PhaseModel::new(
                "z_solve",
                rep(&|| self.sweep_model("z_solve", SweepAxis::Z)),
            ),
            PhaseModel::new("add", vec![self.add_and_norm_model()]),
        ]
    }

    /// Layouts of the three hot arrays, in `register_hot` order.
    pub fn array_layouts(&self) -> Vec<ccnuma::ArrayLayout> {
        vec![self.u.layout(), self.rhs.layout(), self.forcing.layout()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma::{Machine, MachineConfig};

    fn rt() -> Runtime {
        Runtime::new(Machine::new(MachineConfig::origin2000_16p()))
    }

    #[test]
    fn constant_field_zero_forcing_gives_zero_rhs() {
        let mut rt = rt();
        let state = AdiState::new(&mut rt, "t", 6, 6, 6);
        state.u.fill(3.0);
        state.compute_rhs(&mut rt, 0.2, 0.0);
        for i in 0..state.grid.len() {
            assert!(state.rhs.peek(i).abs() < 1e-12, "lap(const) must vanish");
        }
    }

    #[test]
    fn add_applies_update_and_norms() {
        let mut rt = rt();
        let state = AdiState::new(&mut rt, "t", 4, 4, 4);
        state.u.fill(1.0);
        state.rhs.fill(0.5);
        let norm = state.add_and_norm(&mut rt);
        assert!((norm - 0.5).abs() < 1e-12);
        for i in 0..state.grid.len() {
            assert!((state.u.peek(i) - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn initial_field_is_deterministic_and_smooth() {
        let mut rt1 = rt();
        let a = AdiState::new(&mut rt1, "t", 8, 8, 8);
        let mut rt2 = rt();
        let b = AdiState::new(&mut rt2, "t", 8, 8, 8);
        assert_eq!(a.u.to_vec(), b.u.to_vec());
        // Bounded away from zero and from blowup.
        for v in a.u.to_vec() {
            assert!(v > 0.0 && v < 3.0);
        }
    }
}
