//! Host-side numerical kernels used by the benchmarks: 5x5 block linear
//! algebra for BT, pentadiagonal solves for SP, and a radix-2 complex FFT
//! for FT.
//!
//! These routines run on values the kernels have already read through the
//! simulated memory system; their arithmetic cost is charged as flops via
//! the per-routine `*_FLOPS` constants.

/// Block dimension of the BT solver (5 conserved quantities).
pub const B: usize = 5;

/// A 5x5 block stored row-major.
pub type Block = [f64; B * B];

/// A length-5 block vector.
pub type BVec = [f64; B];

/// Approximate flop cost of one 5x5 Gauss-Jordan inversion.
pub const INV5_FLOPS: u64 = 2 * (B * B * B) as u64;
/// Approximate flop cost of one 5x5 by 5x5 multiply.
pub const MATMUL5_FLOPS: u64 = 2 * (B * B * B) as u64;
/// Approximate flop cost of one 5x5 by 5-vector multiply.
pub const MATVEC5_FLOPS: u64 = 2 * (B * B) as u64;

/// `out = m * v` for a 5x5 block.
#[inline]
pub fn matvec5(m: &Block, v: &BVec) -> BVec {
    let mut out = [0.0; B];
    for (r, o) in out.iter_mut().enumerate() {
        let row = &m[r * B..(r + 1) * B];
        *o = row.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
    }
    out
}

/// `out = a * b` for 5x5 blocks.
#[inline]
pub fn matmul5(a: &Block, b: &Block) -> Block {
    let mut out = [0.0; B * B];
    for r in 0..B {
        for k in 0..B {
            let av = a[r * B + k];
            if av == 0.0 {
                continue;
            }
            for c in 0..B {
                out[r * B + c] += av * b[k * B + c];
            }
        }
    }
    out
}

/// `a - b` elementwise.
#[inline]
pub fn matsub5(a: &Block, b: &Block) -> Block {
    let mut out = [0.0; B * B];
    for i in 0..B * B {
        out[i] = a[i] - b[i];
    }
    out
}

/// `a - b` for block vectors.
#[inline]
pub fn vecsub5(a: &BVec, b: &BVec) -> BVec {
    let mut out = [0.0; B];
    for i in 0..B {
        out[i] = a[i] - b[i];
    }
    out
}

/// Invert a 5x5 block with Gauss-Jordan elimination and partial pivoting.
/// Returns `None` for (numerically) singular blocks.
pub fn inv5(m: &Block) -> Option<Block> {
    let mut a = *m;
    let mut inv: Block = [0.0; B * B];
    for i in 0..B {
        inv[i * B + i] = 1.0;
    }
    for col in 0..B {
        // Partial pivot.
        let mut pivot_row = col;
        let mut pivot_val = a[col * B + col].abs();
        for r in col + 1..B {
            let v = a[r * B + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-300 {
            return None;
        }
        if pivot_row != col {
            for c in 0..B {
                a.swap(col * B + c, pivot_row * B + c);
                inv.swap(col * B + c, pivot_row * B + c);
            }
        }
        let p = a[col * B + col];
        for c in 0..B {
            a[col * B + c] /= p;
            inv[col * B + c] /= p;
        }
        for r in 0..B {
            if r == col {
                continue;
            }
            let f = a[r * B + col];
            if f == 0.0 {
                continue;
            }
            for c in 0..B {
                a[r * B + c] -= f * a[col * B + c];
                inv[r * B + c] -= f * inv[col * B + c];
            }
        }
    }
    Some(inv)
}

/// Identity block scaled by `s`.
pub fn scaled_identity5(s: f64) -> Block {
    let mut m = [0.0; B * B];
    for i in 0..B {
        m[i * B + i] = s;
    }
    m
}

/// Solve a block-tridiagonal system in place (Thomas algorithm with 5x5
/// blocks): `A[i] X[i-1] + Bd[i] X[i] + C[i] X[i+1] = R[i]` for
/// `i = 0..n` (with `A[0]` and `C[n-1]` ignored). `rhs` is overwritten with
/// the solution. Returns the flops spent, or `None` on a singular pivot.
pub fn block_tridiag_solve(
    a: &[Block],
    bd: &[Block],
    c: &[Block],
    rhs: &mut [BVec],
) -> Option<u64> {
    let n = bd.len();
    assert!(a.len() == n && c.len() == n && rhs.len() == n);
    if n == 0 {
        return Some(0);
    }
    let mut flops = 0u64;
    // Forward elimination: cp[i] = pivot^-1 * c[i]; rhs[i] = pivot^-1 * (...)
    let mut cp: Vec<Block> = vec![[0.0; B * B]; n];
    let mut pivot_inv = inv5(&bd[0])?;
    flops += INV5_FLOPS;
    cp[0] = matmul5(&pivot_inv, &c[0]);
    rhs[0] = matvec5(&pivot_inv, &rhs[0]);
    flops += MATMUL5_FLOPS + MATVEC5_FLOPS;
    for i in 1..n {
        let pivot = matsub5(&bd[i], &matmul5(&a[i], &cp[i - 1]));
        pivot_inv = inv5(&pivot)?;
        flops += MATMUL5_FLOPS + INV5_FLOPS;
        if i + 1 < n {
            cp[i] = matmul5(&pivot_inv, &c[i]);
            flops += MATMUL5_FLOPS;
        }
        let r = vecsub5(&rhs[i], &matvec5(&a[i], &rhs[i - 1]));
        rhs[i] = matvec5(&pivot_inv, &r);
        flops += 2 * MATVEC5_FLOPS;
    }
    // Back substitution.
    for i in (0..n - 1).rev() {
        let correction = matvec5(&cp[i], &rhs[i + 1]);
        rhs[i] = vecsub5(&rhs[i], &correction);
        flops += MATVEC5_FLOPS;
    }
    Some(flops)
}

/// Solve a scalar pentadiagonal system in place:
/// `e[i] x[i-2] + a[i] x[i-1] + d[i] x[i] + c[i] x[i+1] + f[i] x[i+2] = r[i]`.
/// Bands outside the matrix are ignored. `r` is overwritten with the
/// solution. Returns flops, or `None` on a zero pivot. Plain Gaussian
/// elimination without pivoting — valid for the diagonally dominant systems
/// SP assembles.
#[allow(clippy::many_single_char_names)]
pub fn penta_solve(
    e: &[f64],
    a: &[f64],
    d: &[f64],
    c: &[f64],
    f: &[f64],
    r: &mut [f64],
) -> Option<u64> {
    let n = d.len();
    assert!(e.len() == n && a.len() == n && c.len() == n && f.len() == n && r.len() == n);
    if n == 0 {
        return Some(0);
    }
    // Pentadiagonal Gaussian elimination generates no fill-in: eliminating
    // the two sub-band entries of column i with row i (whose nonzeros sit at
    // columns i..i+2) only touches columns i+1 and i+2 of rows i+1 and i+2,
    // which are inside their bands. Working copies of the mutable bands:
    let mut aa = a.to_vec();
    let mut dd = d.to_vec();
    let mut cc = c.to_vec();
    let ff = f; // the outermost super-band is never modified
    let mut flops = 0u64;
    for i in 0..n {
        if dd[i].abs() < 1e-300 {
            return None;
        }
        // Eliminate row i+1's column-i entry (the a band).
        if i + 1 < n {
            let m1 = aa[i + 1] / dd[i];
            dd[i + 1] -= m1 * cc[i];
            cc[i + 1] -= m1 * ff[i]; // row i+1, column i+2
            r[i + 1] -= m1 * r[i];
            flops += 7;
        }
        // Eliminate row i+2's column-i entry (the e band).
        if i + 2 < n {
            let m2 = e[i + 2] / dd[i];
            aa[i + 2] -= m2 * cc[i]; // row i+2, column i+1
            dd[i + 2] -= m2 * ff[i]; // row i+2, column i+2
            r[i + 2] -= m2 * r[i];
            flops += 7;
        }
    }
    // Back substitution against the upper-triangular band {dd, cc, ff}.
    r[n - 1] /= dd[n - 1];
    if n >= 2 {
        r[n - 2] = (r[n - 2] - cc[n - 2] * r[n - 1]) / dd[n - 2];
    }
    for i in (0..n.saturating_sub(2)).rev() {
        r[i] = (r[i] - cc[i] * r[i + 1] - ff[i] * r[i + 2]) / dd[i];
        flops += 5;
    }
    Some(flops)
}

/// Complex number as a pair (re, im).
pub type C64 = (f64, f64);

#[inline]
fn cadd(a: C64, b: C64) -> C64 {
    (a.0 + b.0, a.1 + b.1)
}

#[inline]
fn csub(a: C64, b: C64) -> C64 {
    (a.0 - b.0, a.1 - b.1)
}

#[inline]
fn cmul(a: C64, b: C64) -> C64 {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// In-place radix-2 decimation-in-time FFT of a power-of-two-length buffer.
/// `inverse` selects the inverse transform (including the 1/n scaling).
/// Returns the flop count.
pub fn fft_inplace(data: &mut [C64], inverse: bool) -> u64 {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return 0;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    let mut flops = 0u64;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = (1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = cmul(data[i + k + len / 2], w);
                data[i + k] = cadd(u, v);
                data[i + k + len / 2] = csub(u, v);
                w = cmul(w, wlen);
                flops += 16;
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for d in data.iter_mut() {
            d.0 *= inv_n;
            d.1 *= inv_n;
        }
        flops += 2 * n as u64;
    }
    flops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn inv5_inverts() {
        // A well-conditioned test matrix.
        let mut m: Block = [0.0; 25];
        for r in 0..B {
            for c in 0..B {
                m[r * B + c] = if r == c {
                    4.0
                } else {
                    1.0 / (1.0 + (r + 2 * c) as f64)
                };
            }
        }
        let inv = inv5(&m).unwrap();
        let prod = matmul5(&m, &inv);
        for r in 0..B {
            for c in 0..B {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!(
                    approx(prod[r * B + c], expect, 1e-12),
                    "({r},{c}) = {}",
                    prod[r * B + c]
                );
            }
        }
    }

    #[test]
    fn inv5_detects_singular() {
        let m: Block = [0.0; 25];
        assert!(inv5(&m).is_none());
    }

    #[test]
    fn matvec_and_matmul_agree_with_manual() {
        let mut a: Block = [0.0; 25];
        a[0] = 2.0; // a[0][0]
        a[6] = 3.0; // a[1][1]
        let v: BVec = [1.0, 2.0, 0.0, 0.0, 0.0];
        let out = matvec5(&a, &v);
        assert_eq!(out, [2.0, 6.0, 0.0, 0.0, 0.0]);
        let id = scaled_identity5(1.0);
        assert_eq!(matmul5(&a, &id), a);
    }

    #[test]
    fn block_tridiag_solves_known_system() {
        // Build a random-ish diagonally dominant block tridiagonal system,
        // multiply a known solution, and recover it.
        let n = 12;
        let mk = |seed: usize| -> Block {
            let mut m = scaled_identity5(6.0 + (seed % 3) as f64);
            for r in 0..B {
                for c in 0..B {
                    if r != c {
                        m[r * B + c] = ((seed * 31 + r * 7 + c * 13) % 10) as f64 * 0.05;
                    }
                }
            }
            m
        };
        let off = |seed: usize| -> Block {
            let mut m = [0.0; 25];
            for r in 0..B {
                for c in 0..B {
                    m[r * B + c] = ((seed * 17 + r * 3 + c * 11) % 7) as f64 * 0.04 - 0.1;
                }
            }
            m
        };
        let a: Vec<Block> = (0..n).map(|i| off(i + 100)).collect();
        let bd: Vec<Block> = (0..n).map(mk).collect();
        let c: Vec<Block> = (0..n).map(|i| off(i + 500)).collect();
        let x_true: Vec<BVec> = (0..n)
            .map(|i| std::array::from_fn(|k| ((i * 5 + k) % 9) as f64 * 0.3 - 1.0))
            .collect();
        // rhs = A x.
        let mut rhs: Vec<BVec> = vec![[0.0; B]; n];
        for i in 0..n {
            let mut r = matvec5(&bd[i], &x_true[i]);
            if i > 0 {
                let t = matvec5(&a[i], &x_true[i - 1]);
                for k in 0..B {
                    r[k] += t[k];
                }
            }
            if i + 1 < n {
                let t = matvec5(&c[i], &x_true[i + 1]);
                for k in 0..B {
                    r[k] += t[k];
                }
            }
            rhs[i] = r;
        }
        let flops = block_tridiag_solve(&a, &bd, &c, &mut rhs).unwrap();
        assert!(flops > 0);
        for i in 0..n {
            for k in 0..B {
                assert!(
                    approx(rhs[i][k], x_true[i][k], 1e-9),
                    "x[{i}][{k}] = {} want {}",
                    rhs[i][k],
                    x_true[i][k]
                );
            }
        }
    }

    #[test]
    fn block_tridiag_n1() {
        let bd = vec![scaled_identity5(2.0)];
        let a = vec![[0.0; 25]];
        let c = vec![[0.0; 25]];
        let mut rhs = vec![[2.0, 4.0, 6.0, 8.0, 10.0]];
        block_tridiag_solve(&a, &bd, &c, &mut rhs).unwrap();
        assert_eq!(rhs[0], [1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn penta_solves_known_system() {
        let n = 20;
        // Diagonally dominant pentadiagonal matrix.
        let e: Vec<f64> = (0..n)
            .map(|i| if i >= 2 { -0.1 - 0.01 * i as f64 } else { 0.0 })
            .collect();
        let a: Vec<f64> = (0..n)
            .map(|i| if i >= 1 { -0.5 + 0.02 * i as f64 } else { 0.0 })
            .collect();
        let d: Vec<f64> = (0..n).map(|i| 4.0 + 0.1 * (i % 5) as f64).collect();
        let c: Vec<f64> = (0..n)
            .map(|i| {
                if i + 1 < n {
                    -0.4 - 0.01 * i as f64
                } else {
                    0.0
                }
            })
            .collect();
        let f: Vec<f64> = (0..n)
            .map(|i| {
                if i + 2 < n {
                    0.2 + 0.005 * i as f64
                } else {
                    0.0
                }
            })
            .collect();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 * 0.25 - 1.0).collect();
        // r = M x.
        let mut r = vec![0.0; n];
        for i in 0..n {
            let mut s = d[i] * x_true[i];
            if i >= 2 {
                s += e[i] * x_true[i - 2];
            }
            if i >= 1 {
                s += a[i] * x_true[i - 1];
            }
            if i + 1 < n {
                s += c[i] * x_true[i + 1];
            }
            if i + 2 < n {
                s += f[i] * x_true[i + 2];
            }
            r[i] = s;
        }
        penta_solve(&e, &a, &d, &c, &f, &mut r).unwrap();
        for i in 0..n {
            assert!(
                approx(r[i], x_true[i], 1e-9),
                "x[{i}] = {} want {}",
                r[i],
                x_true[i]
            );
        }
    }

    #[test]
    fn penta_small_sizes() {
        for n in 1..=4 {
            let e = vec![0.0; n];
            let a = vec![0.0; n];
            let d = vec![2.0; n];
            let c = vec![0.0; n];
            let f = vec![0.0; n];
            let mut r: Vec<f64> = (0..n).map(|i| 2.0 * (i + 1) as f64).collect();
            penta_solve(&e, &a, &d, &c, &f, &mut r).unwrap();
            for (i, v) in r.iter().enumerate() {
                assert!(approx(*v, (i + 1) as f64, 1e-12));
            }
        }
    }

    #[test]
    fn fft_roundtrip_is_identity() {
        let n = 64;
        let orig: Vec<C64> = (0..n)
            .map(|i| ((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut data = orig.clone();
        fft_inplace(&mut data, false);
        fft_inplace(&mut data, true);
        for i in 0..n {
            assert!(approx(data[i].0, orig[i].0, 1e-12));
            assert!(approx(data[i].1, orig[i].1, 1e-12));
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![(0.0, 0.0); 8];
        data[0] = (1.0, 0.0);
        fft_inplace(&mut data, false);
        for d in &data {
            assert!(approx(d.0, 1.0, 1e-12) && approx(d.1, 0.0, 1e-12));
        }
    }

    #[test]
    fn fft_parseval() {
        let n = 128;
        let time: Vec<C64> = (0..n)
            .map(|i| ((i as f64 * 0.7).cos(), (i as f64 * 0.3).sin()))
            .collect();
        let mut freq = time.clone();
        fft_inplace(&mut freq, false);
        let e_time: f64 = time.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum();
        let e_freq: f64 = freq.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f64>() / n as f64;
        assert!(approx(e_time, e_freq, 1e-12));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![(0.0, 0.0); 12];
        fft_inplace(&mut data, false);
    }
}
