//! NAS FT: 3-D fast Fourier transform with spectral evolution.
//!
//! Structure follows the NAS benchmark: a random complex field is
//! transformed to frequency space once; each timed iteration multiplies the
//! spectrum by decaying evolution factors (`evolve`), inverse-transforms it
//! back (three 1-D FFT passes, one per dimension), and accumulates a
//! checksum over scattered indices.
//!
//! Parallel structure: the x- and y-direction FFT passes parallelize over
//! z-planes (local to a thread's z-slab under first-touch); the z-direction
//! pass parallelizes over y and walks across all z-slabs — FT's all-to-all
//! flavour, and the reason the paper finds FT the most placement-sensitive
//! of the random-placement cases and the one where kernel migration hurts
//! (page-level false sharing between pass directions).

use crate::common::{BenchName, NasBenchmark, PhaseHook, Scale, Verification};
use crate::la::{fft_inplace, C64};
use ccnuma::SimArray;
use omp::{Par, Runtime, Schedule};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use upmlib::UpmEngine;

/// FT problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct FtConfig {
    /// Grid edge (power of two); the grid is `n^3` complex values.
    pub n: usize,
    /// Timed iterations (NAS Class A uses 6).
    pub niter: usize,
    /// Evolution decay constant (NAS alpha = 1e-6).
    pub alpha: f64,
    /// RNG seed for the initial field.
    pub seed: u64,
}

impl FtConfig {
    /// Parameters for a scale class.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => Self {
                n: 8,
                niter: 3,
                alpha: 1e-3,
                seed: 314159,
            },
            Scale::Small => Self {
                n: 64,
                niter: 2,
                alpha: 1e-3,
                seed: 314159,
            },
            Scale::Medium => Self {
                n: 64,
                niter: 6,
                alpha: 1e-3,
                seed: 314159,
            },
        }
    }
}

/// The FT benchmark instance.
pub struct Ft {
    cfg: FtConfig,
    /// Frequency-space field (forward transform of the initial conditions).
    u0: SimArray<C64>,
    /// Working field: evolved spectrum, then its inverse transform.
    u1: SimArray<C64>,
    /// Host copy of the initial conditions, for verification.
    host_init: Vec<C64>,
    /// Checksum after each timed iteration.
    checksums: Vec<C64>,
    /// Whether the one-time forward transform has run.
    transformed: bool,
}

impl Ft {
    /// Allocate and initialize on the runtime's machine.
    pub fn new(rt: &mut Runtime, scale: Scale) -> Self {
        Self::with_config(rt, FtConfig::for_scale(scale))
    }

    /// Allocate with explicit parameters.
    pub fn with_config(rt: &mut Runtime, cfg: FtConfig) -> Self {
        assert!(
            cfg.n.is_power_of_two(),
            "FT grid edge must be a power of two"
        );
        let len = cfg.n * cfg.n * cfg.n;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let host_init: Vec<C64> = (0..len)
            .map(|_| (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let m = rt.machine_mut();
        let init = host_init.clone();
        let u0 = SimArray::from_fn(m, "ft.u0", len, |i| init[i]);
        let u1 = SimArray::new(m, "ft.u1", len, (0.0, 0.0));
        Self {
            cfg,
            u0,
            u1,
            host_init,
            checksums: Vec::new(),
            transformed: false,
        }
    }

    /// Problem parameters.
    pub fn config(&self) -> &FtConfig {
        &self.cfg
    }

    /// Simulated range of the spectral field (diagnostics).
    pub fn u0_range(&self) -> (u64, u64) {
        self.u0.vrange()
    }

    /// Simulated range of the working field (diagnostics).
    pub fn u1_range(&self) -> (u64, u64) {
        self.u1.vrange()
    }

    #[inline(always)]
    fn idx(n: usize, x: usize, y: usize, z: usize) -> usize {
        (z * n + y) * n + x
    }

    /// One 1-D FFT pass along `axis` (0 = x, 1 = y, 2 = z) over the whole
    /// field in `arr`, in place.
    fn fft_pass(rt: &mut Runtime, arr: &SimArray<C64>, n: usize, axis: usize, inverse: bool) {
        // Pencil gather/compute/scatter. The x and y passes parallelize over
        // z (slab-local); the z pass parallelizes over y (slab-crossing).
        let outer = n; // z for axes 0/1, y for axis 2
        rt.parallel_for(outer, Schedule::Static, |par, o| {
            let mut line = vec![(0.0, 0.0); n];
            for s in 0..n {
                // (o, s) enumerate the two fixed coordinates of the pencil.
                for (k, slot) in line.iter_mut().enumerate() {
                    let i = match axis {
                        0 => Self::idx(n, k, s, o),
                        1 => Self::idx(n, s, k, o),
                        _ => Self::idx(n, s, o, k),
                    };
                    *slot = par.get(arr, i);
                }
                let flops = fft_inplace(&mut line, inverse);
                par.flops(flops);
                for (k, slot) in line.iter().enumerate() {
                    let i = match axis {
                        0 => Self::idx(n, k, s, o),
                        1 => Self::idx(n, s, k, o),
                        _ => Self::idx(n, s, o, k),
                    };
                    par.set(arr, i, *slot);
                }
            }
        });
    }

    /// Full 3-D FFT of `arr` in place.
    fn fft3d(rt: &mut Runtime, arr: &SimArray<C64>, n: usize, inverse: bool) {
        Self::fft_pass(rt, arr, n, 0, inverse);
        Self::fft_pass(rt, arr, n, 1, inverse);
        Self::fft_pass(rt, arr, n, 2, inverse);
    }

    /// Squared "wavenumber" of a grid index (symmetric about n/2, as NAS).
    #[inline]
    fn k2(n: usize, i: usize) -> f64 {
        let k = if i > n / 2 {
            i as isize - n as isize
        } else {
            i as isize
        };
        (k * k) as f64
    }

    /// `u1 = u0 * exp(-alpha * t * |k|^2)` — the spectral evolution step.
    fn evolve(&self, rt: &mut Runtime, t: usize) {
        let n = self.cfg.n;
        let alpha = self.cfg.alpha;
        let (u0, u1) = (&self.u0, &self.u1);
        rt.parallel_for(n, Schedule::Static, |par, z| {
            for y in 0..n {
                for x in 0..n {
                    let k2 = Self::k2(n, x) + Self::k2(n, y) + Self::k2(n, z);
                    let factor = (-alpha * t as f64 * k2).exp();
                    let i = Self::idx(n, x, y, z);
                    let v = par.get(u0, i);
                    par.set(u1, i, (v.0 * factor, v.1 * factor));
                    par.flops(12);
                }
            }
        });
    }

    /// NAS-style checksum: sum of 1024 scattered elements of `u1`, done by
    /// the master thread.
    fn checksum(&self, rt: &mut Runtime) -> C64 {
        let n = self.cfg.n;
        let len = n * n * n;
        let u1 = &self.u1;
        rt.serial(|par: &mut Par<'_>| {
            let mut sum = (0.0, 0.0);
            for j in 1..=1024u64 {
                let q = (j.wrapping_mul(j).wrapping_add(j * 5)) as usize % len;
                let v = par.get(u1, q);
                sum.0 += v.0;
                sum.1 += v.1;
                par.flops(2);
            }
            (sum.0 / len as f64, sum.1 / len as f64)
        })
    }

    /// The one-time forward transform of the initial conditions.
    fn forward_transform(&mut self, rt: &mut Runtime) {
        Self::fft3d(rt, &self.u0, self.cfg.n, false);
        self.transformed = true;
    }

    /// Model of one `fft_pass` over `arr`: gather + scatter of every
    /// pencil along `axis` (read then write of the same elements).
    fn fft_pass_model(
        name: &str,
        arr: ccnuma::ArrayLayout,
        n: usize,
        axis: usize,
    ) -> crate::model::LoopModel {
        use ccnuma::AccessKind::{Read, Write};
        crate::model::LoopModel::parallel(name, n, Schedule::Static, move |o, emit| {
            for s in 0..n {
                for kind in [Read, Write] {
                    for k in 0..n {
                        let i = match axis {
                            0 => Self::idx(n, k, s, o),
                            1 => Self::idx(n, s, k, o),
                            _ => Self::idx(n, s, o, k),
                        };
                        emit(arr.vaddr_of(i), kind);
                    }
                }
            }
        })
    }

    /// Phase sequence of the evolve / inverse-FFT / checksum pipeline run
    /// by every timed iteration (and by the tail of the cold start).
    fn pipeline_phases(&self) -> Vec<crate::model::PhaseModel> {
        use crate::model::{LoopModel, PhaseModel};
        use ccnuma::AccessKind::{Read, Write};
        let n = self.cfg.n;
        let (u0, u1) = (self.u0.layout(), self.u1.layout());
        let evolve = {
            let (u0, u1) = (u0.clone(), u1.clone());
            LoopModel::parallel("evolve", n, Schedule::Static, move |z, emit| {
                for y in 0..n {
                    for x in 0..n {
                        let i = Self::idx(n, x, y, z);
                        emit(u0.vaddr_of(i), Read);
                        emit(u1.vaddr_of(i), Write);
                    }
                }
            })
        };
        let len = n * n * n;
        let checksum = {
            let u1 = u1.clone();
            LoopModel::serial("checksum", move |_, emit| {
                for j in 1..=1024u64 {
                    let q = (j.wrapping_mul(j).wrapping_add(j * 5)) as usize % len;
                    emit(u1.vaddr_of(q), Read);
                }
            })
        };
        vec![
            PhaseModel::new("evolve", vec![evolve]),
            PhaseModel::new(
                "fft_inverse",
                (0..3)
                    .map(|axis| {
                        Self::fft_pass_model(&format!("ifft_pass{axis}"), u1.clone(), n, axis)
                    })
                    .collect(),
            ),
            PhaseModel::new("checksum", vec![checksum]),
        ]
    }

    /// Host-only reference of the full pipeline, for verification.
    fn host_reference_checksums(&self, iters: usize) -> Vec<C64> {
        let n = self.cfg.n;
        let len = n * n * n;
        let mut u0 = self.host_init.clone();
        // Forward 3-D FFT.
        host_fft3d(&mut u0, n, false);
        let mut sums = Vec::new();
        for t in 1..=iters {
            let mut u1: Vec<C64> = u0
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let x = i % n;
                    let y = (i / n) % n;
                    let z = i / (n * n);
                    let k2 = Self::k2(n, x) + Self::k2(n, y) + Self::k2(n, z);
                    let f = (-self.cfg.alpha * t as f64 * k2).exp();
                    (v.0 * f, v.1 * f)
                })
                .collect();
            host_fft3d(&mut u1, n, true);
            let mut sum = (0.0, 0.0);
            for j in 1..=1024u64 {
                let q = (j.wrapping_mul(j).wrapping_add(j * 5)) as usize % len;
                sum.0 += u1[q].0;
                sum.1 += u1[q].1;
            }
            sums.push((sum.0 / len as f64, sum.1 / len as f64));
        }
        sums
    }
}

/// Host-side 3-D FFT used by verification.
fn host_fft3d(data: &mut [C64], n: usize, inverse: bool) {
    let mut line = vec![(0.0, 0.0); n];
    for axis in 0..3 {
        for o in 0..n {
            for s in 0..n {
                for (k, slot) in line.iter_mut().enumerate() {
                    let i = match axis {
                        0 => Ft::idx(n, k, s, o),
                        1 => Ft::idx(n, s, k, o),
                        _ => Ft::idx(n, s, o, k),
                    };
                    *slot = data[i];
                }
                fft_inplace(&mut line, inverse);
                for (k, slot) in line.iter().enumerate() {
                    let i = match axis {
                        0 => Ft::idx(n, k, s, o),
                        1 => Ft::idx(n, s, k, o),
                        _ => Ft::idx(n, s, o, k),
                    };
                    data[i] = *slot;
                }
            }
        }
    }
}

impl NasBenchmark for Ft {
    fn name(&self) -> BenchName {
        BenchName::Ft
    }

    fn iterations(&self) -> usize {
        self.cfg.niter
    }

    fn cold_start(&mut self, rt: &mut Runtime) {
        // The forward transform plus one full evolve/inverse/checksum pass
        // faults every page through the real parallel constructs; the
        // spectral field u0 it produces is *kept* (it is the benchmark
        // input), while the u1 working state is discarded.
        self.forward_transform(rt);
        self.evolve(rt, 1);
        Self::fft3d(rt, &self.u1, self.cfg.n, true);
        let _ = self.checksum(rt);
        self.checksums.clear();
    }

    fn iterate(&mut self, rt: &mut Runtime, _hook: &mut PhaseHook<'_>) {
        assert!(self.transformed, "cold_start must run first");
        let t = self.checksums.len() + 1;
        self.evolve(rt, t);
        Self::fft3d(rt, &self.u1, self.cfg.n, true);
        let sum = self.checksum(rt);
        self.checksums.push(sum);
    }

    fn register_hot(&self, upm: &mut UpmEngine) {
        upm.memrefcnt(&self.u0);
        upm.memrefcnt(&self.u1);
    }

    fn verify(&self) -> Verification {
        let reference = self.host_reference_checksums(self.checksums.len());
        match (self.checksums.last(), reference.last()) {
            (Some(&(vr, vi)), Some(&(rr, ri))) => {
                let value = (vr * vr + vi * vi).sqrt();
                let expect = (rr * rr + ri * ri).sqrt();
                let mut v = Verification::check(value, expect, 1e-9);
                // Also require the components to match, not just the norm.
                if (vr - rr).abs() > 1e-9 * (1.0 + rr.abs())
                    || (vi - ri).abs() > 1e-9 * (1.0 + ri.abs())
                {
                    v.passed = false;
                }
                v
            }
            _ => Verification::check(f64::NAN, 0.0, 1e-9),
        }
    }

    fn access_model(&self) -> Option<crate::model::KernelModel> {
        // cold_start: the one-time forward transform of u0, then one full
        // evolve / inverse-FFT / checksum pass.
        let n = self.cfg.n;
        let u0 = self.u0.layout();
        let mut cold = vec![crate::model::PhaseModel::new(
            "fft_forward",
            (0..3)
                .map(|axis| Self::fft_pass_model(&format!("fft_pass{axis}"), u0.clone(), n, axis))
                .collect(),
        )];
        cold.extend(self.pipeline_phases());
        Some(crate::model::KernelModel::new(
            BenchName::Ft,
            vec![self.u0.layout(), self.u1.layout()],
            cold,
            self.pipeline_phases(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::no_phase_hook;
    use ccnuma::{Machine, MachineConfig};

    fn rt() -> Runtime {
        Runtime::new(Machine::new(MachineConfig::origin2000_16p()))
    }

    #[test]
    fn ft_matches_host_reference() {
        let mut rt = rt();
        let mut ft = Ft::new(&mut rt, Scale::Tiny);
        ft.cold_start(&mut rt);
        let mut hook = no_phase_hook();
        for _ in 0..ft.iterations() {
            ft.iterate(&mut rt, &mut hook);
        }
        let v = ft.verify();
        assert!(
            v.passed,
            "checksum {} vs reference {}",
            v.value, v.reference
        );
    }

    #[test]
    fn checksums_change_across_iterations() {
        let mut rt = rt();
        let mut ft = Ft::new(&mut rt, Scale::Tiny);
        ft.cold_start(&mut rt);
        let mut hook = no_phase_hook();
        ft.iterate(&mut rt, &mut hook);
        ft.iterate(&mut rt, &mut hook);
        assert_ne!(ft.checksums[0], ft.checksums[1]);
    }

    #[test]
    fn simulated_fft3d_roundtrip() {
        let mut rt = rt();
        let cfg = FtConfig {
            n: 8,
            niter: 1,
            alpha: 1e-3,
            seed: 1,
        };
        let ft = Ft::with_config(&mut rt, cfg);
        let before = ft.u0.to_vec();
        Ft::fft3d(&mut rt, &ft.u0, 8, false);
        Ft::fft3d(&mut rt, &ft.u0, 8, true);
        let after = ft.u0.to_vec();
        for (b, a) in before.iter().zip(&after) {
            assert!((b.0 - a.0).abs() < 1e-10 && (b.1 - a.1).abs() < 1e-10);
        }
    }

    #[test]
    fn k2_is_symmetric() {
        assert_eq!(Ft::k2(8, 1), Ft::k2(8, 7));
        assert_eq!(Ft::k2(8, 2), Ft::k2(8, 6));
        assert_eq!(Ft::k2(8, 0), 0.0);
        assert_eq!(Ft::k2(8, 4), 16.0);
    }
}
