//! Exact JSON round-tripping of [`RunResult`] for the result cache.
//!
//! The experiment service stores a cell's [`RunResult`] on disk and must
//! hand back *byte-identical* downstream reports on a cache hit, so this
//! codec is exact: every `f64` survives unchanged (the `obs` JSON emitter
//! prints floats shortest-round-trip and its parser rounds correctly, so
//! encode-then-decode is the identity on finite values — and every
//! simulated duration is finite).
//!
//! One field is deliberately dropped: `trace`. Traced runs attach a
//! multi-megabyte event ring that exists only for `xp prof`-style
//! consumers; the caching layer bypasses the cache entirely for traced
//! runs, so a cached result never has one. Decoding always yields
//! `trace: None`.

use crate::common::{BenchName, Verification};
use crate::harness::RunResult;
use obs::json::Value;
use upmlib::UpmStats;

/// Schema tag of the encoded form; bump on any field change.
pub const RESULT_SCHEMA: &str = "ddnomp-runresult v1";

impl RunResult {
    /// Encode for the result cache. `trace` is dropped (see module docs).
    pub fn to_cache_json(&self) -> Value {
        Value::object(vec![
            ("schema", RESULT_SCHEMA.into()),
            ("bench", self.bench.label().into()),
            ("placement", self.placement.as_str().into()),
            ("engine", self.engine.as_str().into()),
            ("total_secs", self.total_secs.into()),
            ("per_iter_secs", self.per_iter_secs.clone().into()),
            (
                "verification",
                Value::object(vec![
                    ("passed", self.verification.passed.into()),
                    ("value", self.verification.value.into()),
                    ("reference", self.verification.reference.into()),
                    ("epsilon", self.verification.epsilon.into()),
                ]),
            ),
            (
                "upm",
                match &self.upm {
                    None => Value::Null,
                    Some(u) => Value::object(vec![
                        (
                            "migrations_per_invocation",
                            u.migrations_per_invocation.clone().into(),
                        ),
                        ("distribution_ns", u.distribution_ns.into()),
                        ("replay_migrations", u.replay_migrations.into()),
                        ("undo_migrations", u.undo_migrations.into()),
                        ("recrep_ns", u.recrep_ns.into()),
                        ("frozen_pages", u.frozen_pages.into()),
                        ("vetoed_moves", u.vetoed_moves.into()),
                        ("replications", u.replications.into()),
                        ("rebind_replays", u.rebind_replays.into()),
                        ("rebind_replay_ns", u.rebind_replay_ns.into()),
                    ]),
                },
            ),
            ("kernel_migrations", self.kernel_migrations.into()),
            ("remote_fraction", self.remote_fraction.into()),
            ("recrep_overhead_secs", self.recrep_overhead_secs.into()),
        ])
    }

    /// Decode a cached result. Every field except `trace` is required;
    /// `trace` comes back `None`.
    pub fn from_cache_json(v: &Value) -> Result<RunResult, String> {
        let schema = req_str(v, "schema")?;
        if schema != RESULT_SCHEMA {
            return Err(format!(
                "result schema mismatch: entry '{schema}', binary '{RESULT_SCHEMA}'"
            ));
        }
        let bench_label = req_str(v, "bench")?;
        let bench = BenchName::parse(bench_label)
            .ok_or_else(|| format!("unknown benchmark '{bench_label}'"))?;
        let ver = v
            .get("verification")
            .ok_or("result missing 'verification'")?;
        Ok(RunResult {
            bench,
            placement: req_str(v, "placement")?.to_string(),
            engine: req_str(v, "engine")?.to_string(),
            total_secs: req_f64(v, "total_secs")?,
            per_iter_secs: req_f64_array(v, "per_iter_secs")?,
            verification: Verification {
                passed: ver
                    .get("passed")
                    .and_then(Value::as_bool)
                    .ok_or("verification missing 'passed'")?,
                value: req_f64(ver, "value")?,
                reference: req_f64(ver, "reference")?,
                epsilon: req_f64(ver, "epsilon")?,
            },
            upm: match v.get("upm") {
                None => return Err("result missing 'upm'".into()),
                Some(Value::Null) => None,
                Some(u) => Some(UpmStats {
                    migrations_per_invocation: req_u64_array(u, "migrations_per_invocation")?,
                    distribution_ns: req_f64(u, "distribution_ns")?,
                    replay_migrations: req_u64(u, "replay_migrations")?,
                    undo_migrations: req_u64(u, "undo_migrations")?,
                    recrep_ns: req_f64(u, "recrep_ns")?,
                    frozen_pages: req_u64(u, "frozen_pages")?,
                    vetoed_moves: req_u64(u, "vetoed_moves")?,
                    replications: req_u64(u, "replications")?,
                    rebind_replays: req_u64(u, "rebind_replays")?,
                    rebind_replay_ns: req_f64(u, "rebind_replay_ns")?,
                }),
            },
            kernel_migrations: req_u64(v, "kernel_migrations")?,
            remote_fraction: req_f64(v, "remote_fraction")?,
            recrep_overhead_secs: req_f64(v, "recrep_overhead_secs")?,
            trace: None,
        })
    }
}

fn req_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("result missing string field '{key}'"))
}

fn req_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("result missing number field '{key}'"))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("result missing integer field '{key}'"))
}

fn req_f64_array(v: &Value, key: &str) -> Result<Vec<f64>, String> {
    v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("result missing array field '{key}'"))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("non-number in array '{key}'"))
        })
        .collect()
}

fn req_u64_array(v: &Value, key: &str) -> Result<Vec<u64>, String> {
    v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("result missing array field '{key}'"))?
        .iter()
        .map(|x| {
            x.as_u64()
                .ok_or_else(|| format!("non-integer in array '{key}'"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A result with deliberately awkward floats: values with no short
    /// decimal form, subnormal-adjacent magnitudes, and negative zero.
    fn gnarly() -> RunResult {
        RunResult {
            bench: BenchName::Cg,
            placement: "rand".into(),
            engine: "upmlib".into(),
            total_secs: 0.1 + 0.2,
            per_iter_secs: vec![1.0 / 3.0, 2.0f64.sqrt(), 1e-300, -0.0, 7.25],
            verification: Verification::check(1.000000000000001, 1.0, 1e-9),
            upm: Some(UpmStats {
                migrations_per_invocation: vec![90, 7, 0, 3],
                distribution_ns: 123456789.125,
                replay_migrations: 8,
                undo_migrations: 5,
                recrep_ns: 0.3333333333333333,
                frozen_pages: 2,
                vetoed_moves: 11,
                replications: 1,
                rebind_replays: 4,
                rebind_replay_ns: 9.87e12,
            }),
            kernel_migrations: 4503599627370495, // 2^52 - 1: exact in f64
            remote_fraction: 0.6180339887498949,
            recrep_overhead_secs: 2.5e-3,
            trace: None,
        }
    }

    fn assert_results_equal(a: &RunResult, b: &RunResult) {
        assert_eq!(a.bench, b.bench);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.engine, b.engine);
        assert_eq!(a.total_secs.to_bits(), b.total_secs.to_bits());
        assert_eq!(a.per_iter_secs.len(), b.per_iter_secs.len());
        for (x, y) in a.per_iter_secs.iter().zip(&b.per_iter_secs) {
            assert_eq!(x.to_bits(), y.to_bits(), "per-iter bit-exactness");
        }
        assert_eq!(a.verification, b.verification);
        assert_eq!(a.upm, b.upm);
        assert_eq!(a.kernel_migrations, b.kernel_migrations);
        assert_eq!(a.remote_fraction.to_bits(), b.remote_fraction.to_bits());
        assert_eq!(
            a.recrep_overhead_secs.to_bits(),
            b.recrep_overhead_secs.to_bits()
        );
        assert!(b.trace.is_none());
    }

    #[test]
    fn round_trip_is_bit_exact_in_memory() {
        let r = gnarly();
        let back = RunResult::from_cache_json(&r.to_cache_json()).unwrap();
        assert_results_equal(&r, &back);
    }

    #[test]
    fn round_trip_is_bit_exact_through_serialized_text() {
        // The cache stores text, so the parse leg must also be exact.
        let r = gnarly();
        for text in [
            r.to_cache_json().to_string(),
            r.to_cache_json().to_string_pretty(),
        ] {
            let back = RunResult::from_cache_json(&Value::parse(&text).unwrap()).unwrap();
            assert_results_equal(&r, &back);
        }
    }

    #[test]
    fn none_upm_round_trips() {
        let mut r = gnarly();
        r.upm = None;
        r.engine = "IRIX".into();
        let back = RunResult::from_cache_json(&r.to_cache_json()).unwrap();
        assert_eq!(back.upm, None);
        assert_eq!(back.engine, "IRIX");
    }

    #[test]
    fn schema_and_field_errors_are_reported() {
        let mut doc = gnarly().to_cache_json();
        if let Value::Object(pairs) = &mut doc {
            pairs[0].1 = "ddnomp-runresult v0".into();
        }
        let err = RunResult::from_cache_json(&doc).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        let err =
            RunResult::from_cache_json(&Value::object(vec![("schema", RESULT_SCHEMA.into())]))
                .unwrap_err();
        assert!(err.contains("bench"), "{err}");
    }

    #[test]
    fn bench_and_scale_labels_parse_back() {
        use crate::common::Scale;
        for b in BenchName::all() {
            assert_eq!(BenchName::parse(b.label()), Some(b));
            assert_eq!(BenchName::parse(&b.label().to_ascii_lowercase()), Some(b));
        }
        assert_eq!(BenchName::parse("xx"), None);
        for s in [Scale::Tiny, Scale::Small, Scale::Medium] {
            assert_eq!(Scale::parse(s.label()), Some(s));
        }
        assert_eq!(Scale::parse("huge"), None);
    }
}
