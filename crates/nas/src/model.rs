//! Static access models of the benchmark kernels.
//!
//! A [`KernelModel`] describes — without running the machine simulation —
//! exactly which simulated virtual addresses every loop iteration of a
//! benchmark touches, how each loop's iterations are scheduled, and in what
//! program order the loops execute. It is the contract between the
//! benchmark implementations and the `lint` crate's static NUMA/race
//! analyzer: the analyzer replays the model's access streams symbolically
//! (first-touch placement, per-page reference counts, per-line writer sets)
//! instead of simulating caches, coherence and timing.
//!
//! The model is *exact* for these kernels because every loop body's access
//! pattern depends only on the iteration index and on host-side metadata
//! fixed at allocation time (grid geometry, the CG sparse-matrix pattern) —
//! never on simulated floating-point values. Each benchmark builds its
//! model from the same state that drives the real run ([`ArrayLayout`]
//! snapshots of its `SimArray`s plus clones of its loop metadata), so model
//! addresses agree bit-for-bit with the simulated run's addresses.

use crate::common::BenchName;
use ccnuma::{AccessKind, ArrayLayout};
use omp::Schedule;

/// How a modeled loop's iterations are assigned to threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// A `parallel_for`: iterations split among threads by the schedule.
    Parallel,
    /// A `parallel_reduce`: iterations split by the team-size-invariant
    /// `REDUCTION_BLOCKS` partition (see `omp::reduction_chunks`).
    Reduction,
    /// A `serial` region: all iterations execute on thread 0.
    Serial,
}

/// Closure enumerating one iteration's element accesses: called with the
/// iteration index and an emitter receiving `(vaddr, kind)` per access.
pub type AccessFn = Box<dyn Fn(usize, &mut dyn FnMut(u64, AccessKind))>;

/// One worksharing construct of a benchmark: an iteration space, a
/// schedule, and the per-iteration element accesses.
pub struct LoopModel {
    name: String,
    n: usize,
    schedule: Schedule,
    kind: LoopKind,
    accesses: AccessFn,
}

impl LoopModel {
    /// Model of a `parallel_for` over `0..n`.
    pub fn parallel(
        name: &str,
        n: usize,
        schedule: Schedule,
        accesses: impl Fn(usize, &mut dyn FnMut(u64, AccessKind)) + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            n,
            schedule,
            kind: LoopKind::Parallel,
            accesses: Box::new(accesses),
        }
    }

    /// Model of a `parallel_reduce` over `0..n`.
    pub fn reduction(
        name: &str,
        n: usize,
        schedule: Schedule,
        accesses: impl Fn(usize, &mut dyn FnMut(u64, AccessKind)) + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            n,
            schedule,
            kind: LoopKind::Reduction,
            accesses: Box::new(accesses),
        }
    }

    /// Model of a `serial` region (one iteration, executed by thread 0).
    pub fn serial(
        name: &str,
        accesses: impl Fn(usize, &mut dyn FnMut(u64, AccessKind)) + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            n: 1,
            schedule: Schedule::Static,
            kind: LoopKind::Serial,
            accesses: Box::new(accesses),
        }
    }

    /// The loop's name (stable across runs; used in lint finding keys).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Iteration-space size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The loop's schedule clause.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// How iterations map to threads.
    pub fn kind(&self) -> LoopKind {
        self.kind
    }

    /// Enumerate iteration `iter`'s element accesses.
    pub fn for_each_access(&self, iter: usize, emit: &mut dyn FnMut(u64, AccessKind)) {
        debug_assert!(iter < self.n);
        (self.accesses)(iter, emit);
    }

    /// The iteration ranges owned by each thread (indexed by tid), exactly
    /// mirroring the runtime's static assignment — `static_chunks` for
    /// `parallel_for`, the `REDUCTION_BLOCKS` block partition for
    /// `parallel_reduce`, everything on thread 0 for serial regions.
    pub fn ownership(&self, threads: usize) -> Vec<Vec<(usize, usize)>> {
        match self.kind {
            LoopKind::Parallel => self.schedule.static_chunks(self.n, threads),
            LoopKind::Reduction => omp::reduction_chunks(self.schedule, self.n, threads),
            LoopKind::Serial => {
                let mut owns = vec![Vec::new(); threads];
                owns[0].push((0, self.n));
                owns
            }
        }
    }
}

impl std::fmt::Debug for LoopModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopModel")
            .field("name", &self.name)
            .field("n", &self.n)
            .field("schedule", &self.schedule)
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

/// A named program phase: a sequence of loops executed back to back. For
/// BT/SP the phases are the paper's Figure 2/3 phases (`compute_rhs`, the
/// three sweeps, `add`); other benchmarks phase at operator granularity.
#[derive(Debug)]
pub struct PhaseModel {
    name: String,
    loops: Vec<LoopModel>,
}

impl PhaseModel {
    /// A phase from its loops, in program order.
    pub fn new(name: &str, loops: Vec<LoopModel>) -> Self {
        Self {
            name: name.to_string(),
            loops,
        }
    }

    /// Phase name (stable; used in lint finding keys).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phase's loops in program order.
    pub fn loops(&self) -> &[LoopModel] {
        &self.loops
    }
}

/// The full static model of one benchmark instance: its shared arrays and
/// the phase sequences of the cold-start iteration and of one timed
/// iteration.
#[derive(Debug)]
pub struct KernelModel {
    bench: BenchName,
    arrays: Vec<ArrayLayout>,
    cold: Vec<PhaseModel>,
    iteration: Vec<PhaseModel>,
}

impl KernelModel {
    /// Assemble a model.
    pub fn new(
        bench: BenchName,
        arrays: Vec<ArrayLayout>,
        cold: Vec<PhaseModel>,
        iteration: Vec<PhaseModel>,
    ) -> Self {
        Self {
            bench,
            arrays,
            cold,
            iteration,
        }
    }

    /// Which benchmark this models.
    pub fn bench(&self) -> BenchName {
        self.bench
    }

    /// Layouts of the shared simulated arrays (the `register_hot` set).
    pub fn arrays(&self) -> &[ArrayLayout] {
        &self.arrays
    }

    /// Phases of the discarded cold-start iteration, in program order
    /// (first-touch placement happens here).
    pub fn cold(&self) -> &[PhaseModel] {
        &self.cold
    }

    /// Phases of one timed iteration, in program order.
    pub fn iteration(&self) -> &[PhaseModel] {
        &self.iteration
    }

    /// Flattened `phase/loop` labels of the cold-start phases, in program
    /// order. Every modeled loop — `parallel_for`, `parallel_reduce` or
    /// `serial` — executes as exactly one machine region, so these labels
    /// name the run's regions in order: the profiler's region-to-phase map.
    pub fn cold_loop_names(&self) -> Vec<String> {
        Self::flatten(&self.cold)
    }

    /// Flattened `phase/loop` labels of one timed iteration, in program
    /// order (see [`KernelModel::cold_loop_names`]).
    pub fn iteration_loop_names(&self) -> Vec<String> {
        Self::flatten(&self.iteration)
    }

    fn flatten(phases: &[PhaseModel]) -> Vec<String> {
        phases
            .iter()
            .flat_map(|p| {
                p.loops()
                    .iter()
                    .map(move |l| format!("{}/{}", p.name(), l.name()))
            })
            .collect()
    }

    /// The array containing `vaddr`, if any (attribution for findings).
    pub fn array_of(&self, vaddr: u64) -> Option<&ArrayLayout> {
        self.arrays.iter().find(|a| {
            let (base, len) = a.vrange();
            vaddr >= base && vaddr < base + len
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch_loop(kind: LoopKind, n: usize) -> LoopModel {
        let f = |i: usize, emit: &mut dyn FnMut(u64, AccessKind)| {
            emit(i as u64 * 8, AccessKind::Write);
        };
        match kind {
            LoopKind::Parallel => LoopModel::parallel("l", n, Schedule::Static, f),
            LoopKind::Reduction => LoopModel::reduction("l", n, Schedule::Static, f),
            LoopKind::Serial => LoopModel::serial("l", f),
        }
    }

    #[test]
    fn ownership_partitions_iteration_space() {
        for kind in [LoopKind::Parallel, LoopKind::Reduction] {
            let l = touch_loop(kind, 100);
            let owns = l.ownership(16);
            assert_eq!(owns.len(), 16);
            let mut seen = [false; 100];
            for chunks in &owns {
                for &(s, e) in chunks {
                    for i in s..e {
                        assert!(!seen[i], "iteration {i} owned twice ({kind:?})");
                        seen[i] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "not all iterations owned");
        }
    }

    #[test]
    fn serial_ownership_is_thread_zero() {
        let l = touch_loop(LoopKind::Serial, 1);
        let owns = l.ownership(8);
        assert_eq!(owns[0], vec![(0, 1)]);
        assert!(owns[1..].iter().all(|c| c.is_empty()));
    }

    #[test]
    fn access_enumeration_reaches_emitter() {
        let l = touch_loop(LoopKind::Parallel, 4);
        let mut got = Vec::new();
        l.for_each_access(2, &mut |va, kind| got.push((va, kind)));
        assert_eq!(got, vec![(16, AccessKind::Write)]);
    }

    #[test]
    fn loop_names_flatten_in_program_order() {
        let phase = |name: &str| {
            PhaseModel::new(
                name,
                vec![
                    touch_loop(LoopKind::Parallel, 4),
                    touch_loop(LoopKind::Serial, 1),
                ],
            )
        };
        let km = KernelModel::new(
            BenchName::Cg,
            vec![],
            vec![phase("init")],
            vec![phase("cg"), phase("tail")],
        );
        assert_eq!(km.cold_loop_names(), vec!["init/l", "init/l"]);
        assert_eq!(
            km.iteration_loop_names(),
            vec!["cg/l", "cg/l", "tail/l", "tail/l"]
        );
    }

    #[test]
    fn array_attribution() {
        use ccnuma::{Machine, MachineConfig, SimArray};
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", 32, 0.0f64);
        let b = SimArray::new(&mut m, "b", 32, 0.0f64);
        let km = KernelModel::new(BenchName::Bt, vec![a.layout(), b.layout()], vec![], vec![]);
        assert_eq!(km.array_of(a.vaddr_of(3)).unwrap().name(), "a");
        assert_eq!(km.array_of(b.vaddr_of(0)).unwrap().name(), "b");
        assert!(km.array_of(b.vrange().0 + b.vrange().1).is_none());
    }
}
