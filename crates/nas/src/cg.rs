//! NAS CG: conjugate-gradient approximation of the smallest eigenvalue of a
//! large sparse symmetric positive-definite matrix.
//!
//! Structure follows the NAS benchmark: an outer loop of `outer` iterations,
//! each running `cg_iters` steps of conjugate gradient on `A z = x`,
//! computing `zeta = shift + 1 / (x . z)` and restarting with the normalized
//! `z`. The matrix is a randomly generated sparse SPD matrix in CSR form
//! (diagonally dominant symmetric — same spirit as NAS `makea`, which also
//! builds a random-pattern SPD matrix).
//!
//! Parallel structure (as in the NAS OpenMP code): every vector loop and the
//! sparse matrix-vector product are `PARALLEL DO`s over rows with static
//! scheduling, so each thread owns a contiguous row block, and dot products
//! are reductions. CG has no phase change; the phase hook is never invoked.

use crate::common::{BenchName, NasBenchmark, PhaseHook, Scale, Verification};
use ccnuma::SimArray;
use omp::{Runtime, Schedule};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use upmlib::UpmEngine;

/// CG problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Matrix dimension.
    pub n: usize,
    /// Nonzeros per row (approximate; symmetrization merges duplicates).
    pub nz_per_row: usize,
    /// Outer (timed) iterations.
    pub outer: usize,
    /// CG steps per outer iteration (NAS uses 25).
    pub cg_iters: usize,
    /// Eigenvalue shift (NAS Class A uses 20).
    pub shift: f64,
    /// RNG seed for the matrix pattern.
    pub seed: u64,
}

impl CgConfig {
    /// Parameters for a scale class.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => Self {
                n: 192,
                nz_per_row: 6,
                outer: 3,
                cg_iters: 5,
                shift: 10.0,
                seed: 271828,
            },
            Scale::Small => Self {
                n: 4000,
                nz_per_row: 9,
                outer: 4,
                cg_iters: 8,
                shift: 15.0,
                seed: 271828,
            },
            Scale::Medium => Self {
                n: 8000,
                nz_per_row: 9,
                outer: 6,
                cg_iters: 12,
                shift: 20.0,
                seed: 271828,
            },
        }
    }
}

/// Host-side CSR matrix (pattern and values are also mirrored into
/// `SimArray`s for the simulated run).
struct Csr {
    rowstr: Vec<usize>,
    col: Vec<u32>,
    val: Vec<f64>,
}

/// Generate a symmetric, strictly diagonally dominant (hence SPD) sparse
/// matrix with a seeded random pattern.
fn make_matrix(cfg: &CgConfig) -> Csr {
    let n = cfg.n;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    // Collect symmetric off-diagonal entries.
    let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    // NAS makea clusters nonzeros geometrically around the diagonal; model
    // that with a banded pattern: offsets drawn from an exponential-ish
    // distribution up to n/8, occasionally long-range.
    let band = (n / 16).max(4) as i64;
    for i in 0..n {
        for _ in 0..cfg.nz_per_row / 2 {
            let off: i64 = if rng.gen_range(0..8) == 0 {
                rng.gen_range(-(n as i64 - 1)..n as i64) // rare long-range link
            } else {
                let magnitude = (band as f64).powf(rng.gen_range(0.0..1.0)) as i64;
                if rng.gen_bool(0.5) {
                    magnitude
                } else {
                    -magnitude
                }
            };
            // Clamp instead of wrapping: NAS's generator never wraps, and a
            // wrapped band would couple the first and last row blocks.
            let j = (i as i64 + off).clamp(0, n as i64 - 1) as usize;
            if j == i {
                continue;
            }
            let v = rng.gen_range(-0.5..0.5);
            rows[i].push((j as u32, v));
            rows[j].push((i as u32, v));
        }
    }
    let mut rowstr = Vec::with_capacity(n + 1);
    let mut col = Vec::new();
    let mut val = Vec::new();
    rowstr.push(0);
    for (i, row) in rows.iter_mut().enumerate() {
        row.sort_by_key(|&(j, _)| j);
        // Merge duplicate columns.
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(row.len() + 1);
        for &(j, v) in row.iter() {
            match merged.last_mut() {
                Some(last) if last.0 == j => last.1 += v,
                _ => merged.push((j, v)),
            }
        }
        let offdiag_sum: f64 = merged.iter().map(|&(_, v)| v.abs()).sum();
        // Insert the dominant diagonal in sorted position.
        let diag = (i as u32, offdiag_sum + 1.0);
        let pos = merged.partition_point(|&(j, _)| j < diag.0);
        merged.insert(pos, diag);
        for (j, v) in merged {
            col.push(j);
            val.push(v);
        }
        rowstr.push(col.len());
    }
    Csr { rowstr, col, val }
}

/// The CG benchmark instance.
pub struct Cg {
    cfg: CgConfig,
    /// Host copy of the matrix (row pointers are loop metadata; the column
    /// and value arrays are also simulated below).
    rowstr: Vec<usize>,
    host_col: Vec<u32>,
    host_val: Vec<f64>,
    a: SimArray<f64>,
    col: SimArray<u32>,
    x: SimArray<f64>,
    z: SimArray<f64>,
    p: SimArray<f64>,
    q: SimArray<f64>,
    r: SimArray<f64>,
    /// zeta after each timed outer iteration.
    zetas: Vec<f64>,
}

impl Cg {
    /// Allocate and initialize a CG instance on the runtime's machine.
    pub fn new(rt: &mut Runtime, scale: Scale) -> Self {
        Self::with_config(rt, CgConfig::for_scale(scale))
    }

    /// Allocate with explicit parameters.
    pub fn with_config(rt: &mut Runtime, cfg: CgConfig) -> Self {
        let csr = make_matrix(&cfg);
        let team = rt.threads();
        let m = rt.machine_mut();
        let a = SimArray::from_fn(m, "cg.a", csr.val.len(), |i| csr.val[i]);
        let col = SimArray::from_fn(m, "cg.col", csr.col.len(), |i| csr.col[i]);
        // The tuned NAS codes pad the shared vectors so each thread's slice
        // sits on its own pages and first-touch distributes them; mirror
        // that with chunk-aligned allocation (one chunk per team thread).
        let x = SimArray::chunk_aligned(m, "cg.x", cfg.n, team, 1.0);
        let z = SimArray::chunk_aligned(m, "cg.z", cfg.n, team, 0.0);
        let p = SimArray::chunk_aligned(m, "cg.p", cfg.n, team, 0.0);
        let q = SimArray::chunk_aligned(m, "cg.q", cfg.n, team, 0.0);
        let r = SimArray::chunk_aligned(m, "cg.r", cfg.n, team, 0.0);
        Self {
            cfg,
            rowstr: csr.rowstr,
            host_col: csr.col,
            host_val: csr.val,
            a,
            col,
            x,
            z,
            p,
            q,
            r,
            zetas: Vec::new(),
        }
    }

    /// Problem parameters.
    pub fn config(&self) -> &CgConfig {
        &self.cfg
    }

    /// Named simulated ranges of all shared arrays (diagnostics).
    pub fn array_ranges(&self) -> Vec<(&'static str, (u64, u64))> {
        vec![
            ("a", self.a.vrange()),
            ("col", self.col.vrange()),
            ("x", self.x.vrange()),
            ("z", self.z.vrange()),
            ("p", self.p.vrange()),
            ("q", self.q.vrange()),
            ("r", self.r.vrange()),
        ]
    }

    /// One outer iteration: `cg_iters` CG steps plus the eigenvalue update.
    /// Returns zeta.
    fn outer_iteration(&mut self, rt: &mut Runtime) -> f64 {
        let n = self.cfg.n;
        let (a, col, x, z, p, q, r) = (
            &self.a, &self.col, &self.x, &self.z, &self.p, &self.q, &self.r,
        );
        let rowstr = &self.rowstr;

        // z = 0, r = x, p = r; rho = r.r
        rt.parallel_for(n, Schedule::Static, |par, i| {
            let xi = par.get(x, i);
            par.set(z, i, 0.0);
            par.set(r, i, xi);
            par.set(p, i, xi);
        });
        let (mut rho, _) = rt.parallel_reduce(
            n,
            Schedule::Static,
            0.0,
            |par, i, acc| {
                let ri = par.get(r, i);
                par.flops(2);
                acc + ri * ri
            },
            |u, v| u + v,
        );

        for _ in 0..self.cfg.cg_iters {
            // q = A p
            rt.parallel_for(n, Schedule::Static, |par, i| {
                let mut sum = 0.0;
                for k in rowstr[i]..rowstr[i + 1] {
                    let j = par.get(col, k) as usize;
                    let v = par.get(a, k);
                    sum += v * par.get(p, j);
                }
                par.flops(2 * (rowstr[i + 1] - rowstr[i]) as u64);
                par.set(q, i, sum);
            });
            // alpha = rho / (p.q)
            let (pq, _) = rt.parallel_reduce(
                n,
                Schedule::Static,
                0.0,
                |par, i, acc| {
                    let v = par.get(p, i) * par.get(q, i);
                    par.flops(2);
                    acc + v
                },
                |u, v| u + v,
            );
            let alpha = rho / pq;
            // z += alpha p; r -= alpha q; rho' = r.r
            let (rho_new, _) = rt.parallel_reduce(
                n,
                Schedule::Static,
                0.0,
                |par, i, acc| {
                    let pi = par.get(p, i);
                    par.update(z, i, |zi| zi + alpha * pi);
                    let qi = par.get(q, i);
                    let ri = par.get(r, i) - alpha * qi;
                    par.set(r, i, ri);
                    par.flops(6);
                    acc + ri * ri
                },
                |u, v| u + v,
            );
            let beta = rho_new / rho;
            rho = rho_new;
            // p = r + beta p
            rt.parallel_for(n, Schedule::Static, |par, i| {
                let v = par.get(r, i) + beta * par.get(p, i);
                par.set(p, i, v);
                par.flops(2);
            });
        }

        // zeta = shift + 1 / (x.z); x = z / ||z||
        let (xz, _) = rt.parallel_reduce(
            n,
            Schedule::Static,
            0.0,
            |par, i, acc| {
                let v = par.get(x, i) * par.get(z, i);
                par.flops(2);
                acc + v
            },
            |u, v| u + v,
        );
        let (zz, _) = rt.parallel_reduce(
            n,
            Schedule::Static,
            0.0,
            |par, i, acc| {
                let zi = par.get(z, i);
                par.flops(2);
                acc + zi * zi
            },
            |u, v| u + v,
        );
        let zeta = self.cfg.shift + 1.0 / xz;
        let inv_norm = 1.0 / zz.sqrt();
        rt.parallel_for(n, Schedule::Static, |par, i| {
            let v = par.get(z, i) * inv_norm;
            par.set(x, i, v);
            par.flops(1);
        });
        zeta
    }

    /// Host-only reference run of the identical algorithm — used by
    /// `verify` to check that the simulated data plane produced exactly the
    /// arithmetic it should have. Dot products use the same 16-way blocked
    /// reduction as the OpenMP `REDUCTION` clause, so the floating-point
    /// summation order matches bit-for-bit.
    fn host_reference_zetas(&self, outer_plus_cold: usize) -> Vec<f64> {
        let n = self.cfg.n;
        // Mirror of the runtime's static-schedule reduction: per-thread
        // block partials folded in thread order onto the identity.
        let blocked_dot = |f: &dyn Fn(usize) -> f64| -> f64 {
            let threads = 16;
            let block = n.div_ceil(threads).max(1);
            let mut total = 0.0;
            for t in 0..threads {
                let (start, end) = ((t * block).min(n), ((t + 1) * block).min(n));
                if start >= end {
                    continue;
                }
                let mut acc = 0.0;
                for i in start..end {
                    acc += f(i);
                }
                total += acc;
            }
            total
        };
        let mut x = vec![1.0f64; n];
        let mut zetas = Vec::new();
        for _ in 0..outer_plus_cold {
            let mut z = vec![0.0; n];
            let mut r = x.clone();
            let mut p = x.clone();
            let mut rho: f64 = blocked_dot(&|i| r[i] * r[i]);
            for _ in 0..self.cfg.cg_iters {
                let mut q = vec![0.0; n];
                for i in 0..n {
                    let mut sum = 0.0;
                    for k in self.rowstr[i]..self.rowstr[i + 1] {
                        sum += self.host_val[k] * p[self.host_col[k] as usize];
                    }
                    q[i] = sum;
                }
                let pq = blocked_dot(&|i| p[i] * q[i]);
                let alpha = rho / pq;
                for i in 0..n {
                    z[i] += alpha * p[i];
                    r[i] -= alpha * q[i];
                }
                let rho_new = blocked_dot(&|i| r[i] * r[i]);
                let beta = rho_new / rho;
                rho = rho_new;
                for i in 0..n {
                    p[i] = r[i] + beta * p[i];
                }
            }
            let xz = blocked_dot(&|i| x[i] * z[i]);
            let zz = blocked_dot(&|i| z[i] * z[i]);
            zetas.push(self.cfg.shift + 1.0 / xz);
            let inv_norm = 1.0 / zz.sqrt();
            for i in 0..n {
                x[i] = z[i] * inv_norm;
            }
        }
        zetas
    }
}

impl NasBenchmark for Cg {
    fn name(&self) -> BenchName {
        BenchName::Cg
    }

    fn iterations(&self) -> usize {
        self.cfg.outer
    }

    fn cold_start(&mut self, rt: &mut Runtime) {
        // Run one full outer iteration to fault every page through the
        // parallel constructs (first-touch distribution), then discard the
        // numeric state.
        let _ = self.outer_iteration(rt);
        self.x.fill(1.0);
        self.z.fill(0.0);
        self.p.fill(0.0);
        self.q.fill(0.0);
        self.r.fill(0.0);
        self.zetas.clear();
    }

    fn iterate(&mut self, rt: &mut Runtime, _hook: &mut PhaseHook<'_>) {
        let zeta = self.outer_iteration(rt);
        self.zetas.push(zeta);
    }

    fn register_hot(&self, upm: &mut UpmEngine) {
        upm.memrefcnt(&self.a);
        upm.memrefcnt(&self.col);
        upm.memrefcnt(&self.x);
        upm.memrefcnt(&self.z);
        upm.memrefcnt(&self.p);
        upm.memrefcnt(&self.q);
        upm.memrefcnt(&self.r);
    }

    fn verify(&self) -> Verification {
        let reference = self.host_reference_zetas(self.zetas.len());
        let value = self.zetas.last().copied().unwrap_or(f64::NAN);
        let expect = reference.last().copied().unwrap_or(f64::NAN);
        Verification::check(value, expect, 1e-10)
    }

    fn access_model(&self) -> Option<crate::model::KernelModel> {
        use crate::model::{KernelModel, LoopModel, PhaseModel};
        use ccnuma::AccessKind::{Read, Write};
        use std::rc::Rc;

        let n = self.cfg.n;
        let rowstr = Rc::new(self.rowstr.clone());
        let cols = Rc::new(self.host_col.clone());
        let (a, col) = (self.a.layout(), self.col.layout());
        let (x, z, p, q, r) = (
            self.x.layout(),
            self.z.layout(),
            self.p.layout(),
            self.q.layout(),
            self.r.layout(),
        );

        // One closure builder per loop of `outer_iteration`, in program
        // order. Loop bodies touch only vectors indexed by the iteration
        // (row) plus, in the sparse product, `p` through the column index.
        let init = {
            let (x, z, r, p) = (x.clone(), z.clone(), r.clone(), p.clone());
            move || {
                let (x, z, r, p) = (x.clone(), z.clone(), r.clone(), p.clone());
                LoopModel::parallel("init", n, Schedule::Static, move |i, emit| {
                    emit(x.vaddr_of(i), Read);
                    emit(z.vaddr_of(i), Write);
                    emit(r.vaddr_of(i), Write);
                    emit(p.vaddr_of(i), Write);
                })
            }
        };
        let rho = {
            let r = r.clone();
            move || {
                let r = r.clone();
                LoopModel::reduction("rho", n, Schedule::Static, move |i, emit| {
                    emit(r.vaddr_of(i), Read);
                })
            }
        };
        let spmv = {
            let (rowstr, cols, a, col, p, q) = (
                rowstr.clone(),
                cols.clone(),
                a.clone(),
                col.clone(),
                p.clone(),
                q.clone(),
            );
            move || {
                let (rowstr, cols, a, col, p, q) = (
                    rowstr.clone(),
                    cols.clone(),
                    a.clone(),
                    col.clone(),
                    p.clone(),
                    q.clone(),
                );
                LoopModel::parallel("spmv", n, Schedule::Static, move |i, emit| {
                    for k in rowstr[i]..rowstr[i + 1] {
                        emit(col.vaddr_of(k), Read);
                        emit(a.vaddr_of(k), Read);
                        emit(p.vaddr_of(cols[k] as usize), Read);
                    }
                    emit(q.vaddr_of(i), Write);
                })
            }
        };
        let pq = {
            let (p, q) = (p.clone(), q.clone());
            move || {
                let (p, q) = (p.clone(), q.clone());
                LoopModel::reduction("pq", n, Schedule::Static, move |i, emit| {
                    emit(p.vaddr_of(i), Read);
                    emit(q.vaddr_of(i), Read);
                })
            }
        };
        let rho_new = {
            let (p, z, q, r) = (p.clone(), z.clone(), q.clone(), r.clone());
            move || {
                let (p, z, q, r) = (p.clone(), z.clone(), q.clone(), r.clone());
                LoopModel::reduction("rho_new", n, Schedule::Static, move |i, emit| {
                    emit(p.vaddr_of(i), Read);
                    emit(z.vaddr_of(i), Read);
                    emit(z.vaddr_of(i), Write);
                    emit(q.vaddr_of(i), Read);
                    emit(r.vaddr_of(i), Read);
                    emit(r.vaddr_of(i), Write);
                })
            }
        };
        let p_update = {
            let (r, p) = (r.clone(), p.clone());
            move || {
                let (r, p) = (r.clone(), p.clone());
                LoopModel::parallel("p_update", n, Schedule::Static, move |i, emit| {
                    emit(r.vaddr_of(i), Read);
                    emit(p.vaddr_of(i), Read);
                    emit(p.vaddr_of(i), Write);
                })
            }
        };
        let xz = {
            let (x, z) = (x.clone(), z.clone());
            move || {
                let (x, z) = (x.clone(), z.clone());
                LoopModel::reduction("xz", n, Schedule::Static, move |i, emit| {
                    emit(x.vaddr_of(i), Read);
                    emit(z.vaddr_of(i), Read);
                })
            }
        };
        let zz = {
            let z = z.clone();
            move || {
                let z = z.clone();
                LoopModel::reduction("zz", n, Schedule::Static, move |i, emit| {
                    emit(z.vaddr_of(i), Read);
                })
            }
        };
        let normalize = {
            let (z, x) = (z.clone(), x.clone());
            move || {
                let (z, x) = (z.clone(), x.clone());
                LoopModel::parallel("normalize", n, Schedule::Static, move |i, emit| {
                    emit(z.vaddr_of(i), Read);
                    emit(x.vaddr_of(i), Write);
                })
            }
        };

        let outer = || {
            let mut cg_loops = Vec::new();
            for _ in 0..self.cfg.cg_iters {
                cg_loops.push(spmv());
                cg_loops.push(pq());
                cg_loops.push(rho_new());
                cg_loops.push(p_update());
            }
            vec![
                PhaseModel::new("init", vec![init(), rho()]),
                PhaseModel::new("cg", cg_loops),
                PhaseModel::new("tail", vec![xz(), zz(), normalize()]),
            ]
        };

        // cold_start runs one full outer iteration; its host-side vector
        // refills touch no simulated pages.
        Some(KernelModel::new(
            BenchName::Cg,
            vec![
                self.a.layout(),
                self.col.layout(),
                self.x.layout(),
                self.z.layout(),
                self.p.layout(),
                self.q.layout(),
                self.r.layout(),
            ],
            outer(),
            outer(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::no_phase_hook;
    use ccnuma::{Machine, MachineConfig};

    fn tiny_rt() -> Runtime {
        Runtime::new(Machine::new(MachineConfig::origin2000_16p()))
    }

    #[test]
    fn matrix_is_symmetric_and_diag_dominant() {
        let cfg = CgConfig::for_scale(Scale::Tiny);
        let csr = make_matrix(&cfg);
        let n = cfg.n;
        // Dense mirror for checking.
        let mut dense = vec![0.0f64; n * n];
        for i in 0..n {
            for k in csr.rowstr[i]..csr.rowstr[i + 1] {
                dense[i * n + csr.col[k] as usize] = csr.val[k];
            }
        }
        for i in 0..n {
            let mut off = 0.0;
            for j in 0..n {
                assert_eq!(dense[i * n + j], dense[j * n + i], "symmetry at ({i},{j})");
                if i != j {
                    off += dense[i * n + j].abs();
                }
            }
            assert!(dense[i * n + i] > off, "row {i} not dominant");
        }
    }

    #[test]
    fn cg_converges_and_verifies() {
        let mut rt = tiny_rt();
        let mut cg = Cg::new(&mut rt, Scale::Tiny);
        cg.cold_start(&mut rt);
        let mut hook = no_phase_hook();
        for _ in 0..cg.iterations() {
            cg.iterate(&mut rt, &mut hook);
        }
        let v = cg.verify();
        assert!(
            v.passed,
            "zeta {} vs host reference {}",
            v.value, v.reference
        );
        assert!(v.value.is_finite());
        // zeta should be settling (successive deltas shrink).
        let z = &cg.zetas;
        assert!(z.len() >= 3);
        let d1 = (z[1] - z[0]).abs();
        let d2 = (z[z.len() - 1] - z[z.len() - 2]).abs();
        assert!(d2 <= d1, "zeta not settling: {z:?}");
    }

    #[test]
    fn cold_start_distributes_pages_first_touch() {
        let mut rt = tiny_rt();
        let mut cg = Cg::new(&mut rt, Scale::Tiny);
        cg.cold_start(&mut rt);
        // x is partitioned over 16 threads across 8 nodes; its pages should
        // not all be on one node... for Tiny (192 elements = 1 page) at
        // least the page exists. Check the big matrix array instead.
        let (base, len) = cg.a.vrange();
        let homes: Vec<_> = (ccnuma::vpage_of(base)..=ccnuma::vpage_of(base + len - 1))
            .filter_map(|vp| rt.machine().node_of_vpage(vp))
            .collect();
        assert!(!homes.is_empty());
    }

    #[test]
    fn deterministic_zetas() {
        let run = || {
            let mut rt = tiny_rt();
            let mut cg = Cg::new(&mut rt, Scale::Tiny);
            cg.cold_start(&mut rt);
            let mut hook = no_phase_hook();
            cg.iterate(&mut rt, &mut hook);
            (cg.zetas[0], rt.machine().clock().now_ns())
        };
        assert_eq!(run(), run());
    }
}
