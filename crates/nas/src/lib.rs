//! NAS-like OpenMP benchmark kernels over the simulated ccNUMA machine.
//!
//! The paper's experiments run the OpenMP implementations of five NAS
//! Parallel Benchmarks — BT, SP, CG, MG and FT — on a 16-processor SGI
//! Origin2000 (§2.1). This crate reimplements the five codes with:
//!
//! * **real numerics** — BT solves 5x5 block-tridiagonal ADI systems, SP
//!   scalar pentadiagonal systems, CG runs conjugate-gradient eigenvalue
//!   estimation on a sparse SPD matrix, MG a 27-point V-cycle multigrid,
//!   FT a 3-D complex FFT with spectral evolution — so every kernel's
//!   output can be verified;
//! * **faithful parallel structure** — the same worksharing pattern as the
//!   NAS OpenMP codes (z-slab partitioning for BT/SP/MG, row partitioning
//!   for CG, pencil partitioning for FT), which is what determines the
//!   page-access pattern the paper studies; BT and SP keep the z-sweep
//!   phase change the record–replay mechanism targets;
//! * **the cold-start protocol** — a discarded first iteration executed
//!   before timing begins, which the NAS codes use to let first-touch
//!   placement distribute pages (§2.1);
//! * **phase hooks** — callback points at the z-sweep boundaries where the
//!   paper's Figure 3 instrumentation calls `upmlib_record`/`upmlib_replay`.
//!
//! Problem sizes are scaled down from Class A (simulating the full Class A
//! working set is compute-prohibitive on the host; the placement phenomena
//! depend on pages-per-thread, which the scaled sizes preserve — see
//! DESIGN.md).

// Gather/scatter loops over grid coordinates read better indexed than as
// iterator chains in the solver kernels.
#![allow(clippy::needless_range_loop)]

pub mod adi;
pub mod bt;
pub mod cg;
pub mod codec;
pub mod common;
pub mod ft;
pub mod harness;
pub mod la;
pub mod mg;
pub mod model;
pub mod proof;
pub mod sp;

pub use common::{BenchName, NasBenchmark, PhasePoint, Scale, Verification};
pub use harness::{run_benchmark, BenchRun, EngineMode, RunConfig, RunResult};
pub use model::{KernelModel, LoopKind, LoopModel, PhaseModel};
pub use proof::{derive_loop_proof, derive_proofs};
