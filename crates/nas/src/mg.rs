//! NAS MG: V-cycle multigrid solution of a 3-D Poisson equation with
//! periodic boundaries.
//!
//! Structure follows the NAS benchmark: the right-hand side `v` is a sparse
//! field of +1/-1 charges; each timed iteration performs one V-cycle
//! (`mg3P`: restrict residuals to the coarsest grid with `rprj3`, smooth,
//! then prolongate with `interp`, re-evaluate residuals with `resid` and
//! smooth with `psinv` on the way up) and re-evaluates the fine-grid
//! residual norm. The 27-point operators use NAS's coefficient classes
//! (center / face / edge / corner weights).
//!
//! Parallel structure: every grid operator is a `PARALLEL DO` over the
//! z-planes of its level, so threads own z-slabs — the layout the paper's
//! first-touch tuning assumes.

use crate::common::{BenchName, NasBenchmark, PhaseHook, Scale, Verification};
use ccnuma::SimArray;
use omp::{Runtime, Schedule};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use upmlib::UpmEngine;

/// 27-point stencil weights by neighbour class: `[center, face, edge,
/// corner]`.
pub type StencilWeights = [f64; 4];

/// The NAS `A` operator (discrete negative Laplacian flavour). Its weights
/// sum to zero, so constant fields are in its null space.
pub const A_WEIGHTS: StencilWeights = [-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0];

/// The NAS Class-A smoother `S` (approximate inverse).
pub const S_WEIGHTS: StencilWeights = [-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0];

/// MG problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct MgConfig {
    /// Finest grid edge (power of two).
    pub n: usize,
    /// Grid levels (level `lt-1` is the finest; each level halves the edge).
    pub lt: usize,
    /// Timed iterations (NAS Class A uses 4).
    pub niter: usize,
    /// Number of +1 and of -1 charges in the right-hand side.
    pub charges: usize,
    /// RNG seed for charge locations.
    pub seed: u64,
}

impl MgConfig {
    /// Parameters for a scale class.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => Self {
                n: 8,
                lt: 2,
                niter: 3,
                charges: 4,
                seed: 1618,
            },
            Scale::Small => Self {
                n: 32,
                lt: 3,
                niter: 3,
                charges: 8,
                seed: 1618,
            },
            Scale::Medium => Self {
                n: 32,
                lt: 4,
                niter: 4,
                charges: 10,
                seed: 1618,
            },
        }
    }

    /// Edge length of level `k` (finest is `lt - 1`).
    pub fn edge(&self, k: usize) -> usize {
        self.n >> (self.lt - 1 - k)
    }
}

/// The MG benchmark instance.
pub struct Mg {
    cfg: MgConfig,
    /// Solution grids, one per level (coarsest first).
    u: Vec<SimArray<f64>>,
    /// Residual grids, one per level.
    r: Vec<SimArray<f64>>,
    /// Right-hand side (finest level only).
    v: SimArray<f64>,
    /// Fine-grid residual norm after each timed iteration.
    rnm2: Vec<f64>,
    /// Residual norm of the initial state (u = 0), for verification.
    initial_rnm2: f64,
}

#[inline(always)]
fn wrap(i: isize, n: usize) -> usize {
    i.rem_euclid(n as isize) as usize
}

#[inline(always)]
fn gidx(n: usize, x: usize, y: usize, z: usize) -> usize {
    (z * n + y) * n + x
}

impl Mg {
    /// Allocate and initialize on the runtime's machine.
    pub fn new(rt: &mut Runtime, scale: Scale) -> Self {
        Self::with_config(rt, MgConfig::for_scale(scale))
    }

    /// Allocate with explicit parameters.
    pub fn with_config(rt: &mut Runtime, cfg: MgConfig) -> Self {
        assert!(cfg.n.is_power_of_two() && cfg.lt >= 1);
        assert!(cfg.n >> (cfg.lt - 1) >= 2, "too many levels for the grid");
        let m = rt.machine_mut();
        let mut u = Vec::new();
        let mut r = Vec::new();
        for k in 0..cfg.lt {
            let e = cfg.edge(k);
            u.push(SimArray::new(m, &format!("mg.u{k}"), e * e * e, 0.0));
            r.push(SimArray::new(m, &format!("mg.r{k}"), e * e * e, 0.0));
        }
        let v = SimArray::new(m, "mg.v", cfg.n * cfg.n * cfg.n, 0.0);
        // Charges at seeded random sites (NAS zran3 places +1s and -1s at
        // the extrema of a random field).
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        for sign in [1.0, -1.0] {
            for _ in 0..cfg.charges {
                let (x, y, z) = (
                    rng.gen_range(0..cfg.n),
                    rng.gen_range(0..cfg.n),
                    rng.gen_range(0..cfg.n),
                );
                v.poke(gidx(cfg.n, x, y, z), sign);
            }
        }
        let initial_rnm2 = {
            // ||v - A*0|| = ||v||, on the host (pre-run diagnostic).
            let s: f64 = v.to_vec().iter().map(|&x| x * x).sum();
            (s / (cfg.n * cfg.n * cfg.n) as f64).sqrt()
        };
        Self {
            cfg,
            u,
            r,
            v,
            rnm2: Vec::new(),
            initial_rnm2,
        }
    }

    /// Problem parameters.
    pub fn config(&self) -> &MgConfig {
        &self.cfg
    }

    /// Apply the 27-point stencil `w` to `src` at `(x, y, z)` with periodic
    /// wrap, reading through the simulated memory system.
    #[inline]
    fn stencil(
        par: &mut omp::Par<'_>,
        src: &SimArray<f64>,
        n: usize,
        x: usize,
        y: usize,
        z: usize,
        w: &StencilWeights,
    ) -> f64 {
        let mut sum = 0.0;
        for dz in -1isize..=1 {
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let class = (dx != 0) as usize + (dy != 0) as usize + (dz != 0) as usize;
                    let weight = w[class];
                    if weight == 0.0 {
                        continue;
                    }
                    let i = gidx(
                        n,
                        wrap(x as isize + dx, n),
                        wrap(y as isize + dy, n),
                        wrap(z as isize + dz, n),
                    );
                    sum += weight * par.get(src, i);
                }
            }
        }
        par.flops(2 * 27);
        sum
    }

    /// `r = src - A u` over one level.
    fn resid(
        rt: &mut Runtime,
        u: &SimArray<f64>,
        src: &SimArray<f64>,
        r: &SimArray<f64>,
        n: usize,
    ) {
        rt.parallel_for(n, Schedule::Static, |par, z| {
            for y in 0..n {
                for x in 0..n {
                    let au = Self::stencil(par, u, n, x, y, z, &A_WEIGHTS);
                    let i = gidx(n, x, y, z);
                    let s = par.get(src, i);
                    par.set(r, i, s - au);
                    par.flops(1);
                }
            }
        });
    }

    /// `u += S r` over one level (the smoother).
    fn psinv(rt: &mut Runtime, r: &SimArray<f64>, u: &SimArray<f64>, n: usize) {
        rt.parallel_for(n, Schedule::Static, |par, z| {
            for y in 0..n {
                for x in 0..n {
                    let sr = Self::stencil(par, r, n, x, y, z, &S_WEIGHTS);
                    let i = gidx(n, x, y, z);
                    par.update(u, i, |v| v + sr);
                    par.flops(1);
                }
            }
        });
    }

    /// Full-weighting restriction of `fine` (edge `2m`) into `coarse`
    /// (edge `m`), NAS `rprj3`. Distance-class weights 1/2, 1/4, 1/8, 1/16.
    fn rprj3(rt: &mut Runtime, fine: &SimArray<f64>, coarse: &SimArray<f64>, m: usize) {
        const W: StencilWeights = [0.5, 0.25, 0.125, 0.0625];
        let nf = 2 * m;
        rt.parallel_for(m, Schedule::Static, |par, zc| {
            for yc in 0..m {
                for xc in 0..m {
                    let (xf, yf, zf) = (2 * xc, 2 * yc, 2 * zc);
                    let mut sum = 0.0;
                    for dz in -1isize..=1 {
                        for dy in -1isize..=1 {
                            for dx in -1isize..=1 {
                                let class =
                                    (dx != 0) as usize + (dy != 0) as usize + (dz != 0) as usize;
                                let i = gidx(
                                    nf,
                                    wrap(xf as isize + dx, nf),
                                    wrap(yf as isize + dy, nf),
                                    wrap(zf as isize + dz, nf),
                                );
                                sum += W[class] * par.get(fine, i);
                            }
                        }
                    }
                    par.set(coarse, gidx(m, xc, yc, zc), sum / 4.0);
                    par.flops(2 * 27 + 1);
                }
            }
        });
    }

    /// Trilinear prolongation of `coarse` (edge `m`) added into `fine`
    /// (edge `2m`), NAS `interp`.
    fn interp(rt: &mut Runtime, coarse: &SimArray<f64>, fine: &SimArray<f64>, m: usize) {
        let nf = 2 * m;
        rt.parallel_for(nf, Schedule::Static, |par, zf| {
            for yf in 0..nf {
                for xf in 0..nf {
                    // Trilinear weights: each fine point sits between up to
                    // 8 coarse points depending on parity.
                    let mut sum = 0.0;
                    let mut weight_total = 0.0;
                    for dz in 0..=(zf % 2) {
                        for dy in 0..=(yf % 2) {
                            for dx in 0..=(xf % 2) {
                                let xc = wrap(((xf + dx) / 2) as isize, m);
                                let yc = wrap(((yf + dy) / 2) as isize, m);
                                let zc = wrap(((zf + dz) / 2) as isize, m);
                                sum += par.get(coarse, gidx(m, xc, yc, zc));
                                weight_total += 1.0;
                            }
                        }
                    }
                    let i = gidx(nf, xf, yf, zf);
                    let contrib = sum / weight_total;
                    par.update(fine, i, |v| v + contrib);
                    par.flops(10);
                }
            }
        });
    }

    /// Residual L2 norm on the finest grid.
    fn fine_rnm2(&self, rt: &mut Runtime) -> f64 {
        let n = self.cfg.n;
        let r = &self.r[self.cfg.lt - 1];
        let (sum, _) = rt.parallel_reduce(
            n,
            Schedule::Static,
            0.0,
            |par, z, acc| {
                let mut s = 0.0;
                for y in 0..n {
                    for x in 0..n {
                        let v = par.get(r, gidx(n, x, y, z));
                        s += v * v;
                    }
                }
                par.flops(2 * (n * n) as u64);
                acc + s
            },
            |a, b| a + b,
        );
        (sum / (n * n * n) as f64).sqrt()
    }

    /// One V-cycle (NAS `mg3P`) plus the fine-grid residual update.
    fn cycle(&mut self, rt: &mut Runtime) -> f64 {
        let lt = self.cfg.lt;
        // Downward: restrict residuals to the coarsest level.
        for k in (1..lt).rev() {
            let m = self.cfg.edge(k - 1);
            Self::rprj3(rt, &self.r[k], &self.r[k - 1], m);
        }
        // Coarsest: u_0 = S r_0 from scratch.
        let e0 = self.cfg.edge(0);
        self.u[0].fill(0.0);
        Self::psinv(rt, &self.r[0], &self.u[0], e0);
        // Upward sweep.
        for k in 1..lt {
            let e = self.cfg.edge(k);
            if k < lt - 1 {
                self.u[k].fill(0.0);
            }
            Self::interp(rt, &self.u[k - 1], &self.u[k], e / 2);
            if k == lt - 1 {
                // Finest: residual against the true right-hand side.
                Self::resid(rt, &self.u[k], &self.v, &self.r[k], e);
            } else {
                // Intermediate: re-evaluate residual in place.
                Self::resid(rt, &self.u[k], &self.r[k], &self.r[k], e);
            }
            Self::psinv(rt, &self.r[k], &self.u[k], e);
        }
        // Final residual for the norm.
        let e = self.cfg.edge(lt - 1);
        Self::resid(rt, &self.u[lt - 1], &self.v, &self.r[lt - 1], e);
        self.fine_rnm2(rt)
    }

    /// Model of a stencil-apply loop (`resid`/`psinv` shape): per point,
    /// reads of `src` at the nonzero-weight neighbours, plus the
    /// per-point accesses of `extra` (read of the rhs field and write or
    /// read-modify-write of the output field).
    fn stencil_model(
        name: &str,
        n: usize,
        src: ccnuma::ArrayLayout,
        w: StencilWeights,
        extra: impl Fn(usize, &mut dyn FnMut(u64, ccnuma::AccessKind)) + 'static,
    ) -> crate::model::LoopModel {
        use ccnuma::AccessKind::Read;
        crate::model::LoopModel::parallel(name, n, Schedule::Static, move |z, emit| {
            for y in 0..n {
                for x in 0..n {
                    for dz in -1isize..=1 {
                        for dy in -1isize..=1 {
                            for dx in -1isize..=1 {
                                let class =
                                    (dx != 0) as usize + (dy != 0) as usize + (dz != 0) as usize;
                                if w[class] == 0.0 {
                                    continue;
                                }
                                let i = gidx(
                                    n,
                                    wrap(x as isize + dx, n),
                                    wrap(y as isize + dy, n),
                                    wrap(z as isize + dz, n),
                                );
                                emit(src.vaddr_of(i), Read);
                            }
                        }
                    }
                    extra(gidx(n, x, y, z), emit);
                }
            }
        })
    }

    /// Model of `resid(u, src, r, n)`.
    fn resid_model(
        name: &str,
        u: ccnuma::ArrayLayout,
        src: ccnuma::ArrayLayout,
        r: ccnuma::ArrayLayout,
        n: usize,
    ) -> crate::model::LoopModel {
        use ccnuma::AccessKind::{Read, Write};
        Self::stencil_model(name, n, u, A_WEIGHTS, move |i, emit| {
            emit(src.vaddr_of(i), Read);
            emit(r.vaddr_of(i), Write);
        })
    }

    /// Model of `psinv(r, u, n)`.
    fn psinv_model(
        name: &str,
        r: ccnuma::ArrayLayout,
        u: ccnuma::ArrayLayout,
        n: usize,
    ) -> crate::model::LoopModel {
        use ccnuma::AccessKind::{Read, Write};
        Self::stencil_model(name, n, r, S_WEIGHTS, move |i, emit| {
            emit(u.vaddr_of(i), Read);
            emit(u.vaddr_of(i), Write);
        })
    }

    /// Model of `rprj3(fine, coarse, m)`.
    fn rprj3_model(
        name: &str,
        fine: ccnuma::ArrayLayout,
        coarse: ccnuma::ArrayLayout,
        m: usize,
    ) -> crate::model::LoopModel {
        use ccnuma::AccessKind::{Read, Write};
        let nf = 2 * m;
        crate::model::LoopModel::parallel(name, m, Schedule::Static, move |zc, emit| {
            for yc in 0..m {
                for xc in 0..m {
                    let (xf, yf, zf) = (2 * xc, 2 * yc, 2 * zc);
                    for dz in -1isize..=1 {
                        for dy in -1isize..=1 {
                            for dx in -1isize..=1 {
                                let i = gidx(
                                    nf,
                                    wrap(xf as isize + dx, nf),
                                    wrap(yf as isize + dy, nf),
                                    wrap(zf as isize + dz, nf),
                                );
                                emit(fine.vaddr_of(i), Read);
                            }
                        }
                    }
                    emit(coarse.vaddr_of(gidx(m, xc, yc, zc)), Write);
                }
            }
        })
    }

    /// Model of `interp(coarse, fine, m)`.
    fn interp_model(
        name: &str,
        coarse: ccnuma::ArrayLayout,
        fine: ccnuma::ArrayLayout,
        m: usize,
    ) -> crate::model::LoopModel {
        use ccnuma::AccessKind::{Read, Write};
        let nf = 2 * m;
        crate::model::LoopModel::parallel(name, nf, Schedule::Static, move |zf, emit| {
            for yf in 0..nf {
                for xf in 0..nf {
                    for dz in 0..=(zf % 2) {
                        for dy in 0..=(yf % 2) {
                            for dx in 0..=(xf % 2) {
                                let xc = wrap(((xf + dx) / 2) as isize, m);
                                let yc = wrap(((yf + dy) / 2) as isize, m);
                                let zc = wrap(((zf + dz) / 2) as isize, m);
                                emit(coarse.vaddr_of(gidx(m, xc, yc, zc)), Read);
                            }
                        }
                    }
                    let i = gidx(nf, xf, yf, zf);
                    emit(fine.vaddr_of(i), Read);
                    emit(fine.vaddr_of(i), Write);
                }
            }
        })
    }

    /// Phase sequence of one V-cycle plus the fine-grid norm, mirroring
    /// [`Mg::cycle`] (the host-side coarse-grid refills touch no simulated
    /// pages).
    fn cycle_phases(&self) -> Vec<crate::model::PhaseModel> {
        use crate::model::{LoopModel, PhaseModel};
        use ccnuma::AccessKind::Read;
        let lt = self.cfg.lt;
        let mut phases = Vec::new();
        for k in (1..lt).rev() {
            let m = self.cfg.edge(k - 1);
            phases.push(PhaseModel::new(
                &format!("rprj3_{k}"),
                vec![Self::rprj3_model(
                    &format!("rprj3_{k}"),
                    self.r[k].layout(),
                    self.r[k - 1].layout(),
                    m,
                )],
            ));
        }
        let e0 = self.cfg.edge(0);
        phases.push(PhaseModel::new(
            "psinv_0",
            vec![Self::psinv_model(
                "psinv_0",
                self.r[0].layout(),
                self.u[0].layout(),
                e0,
            )],
        ));
        for k in 1..lt {
            let e = self.cfg.edge(k);
            phases.push(PhaseModel::new(
                &format!("interp_{k}"),
                vec![Self::interp_model(
                    &format!("interp_{k}"),
                    self.u[k - 1].layout(),
                    self.u[k].layout(),
                    e / 2,
                )],
            ));
            let src = if k == lt - 1 {
                self.v.layout()
            } else {
                self.r[k].layout()
            };
            phases.push(PhaseModel::new(
                &format!("resid_{k}"),
                vec![Self::resid_model(
                    &format!("resid_{k}"),
                    self.u[k].layout(),
                    src,
                    self.r[k].layout(),
                    e,
                )],
            ));
            phases.push(PhaseModel::new(
                &format!("psinv_{k}"),
                vec![Self::psinv_model(
                    &format!("psinv_{k}"),
                    self.r[k].layout(),
                    self.u[k].layout(),
                    e,
                )],
            ));
        }
        let e = self.cfg.edge(lt - 1);
        phases.push(PhaseModel::new(
            "resid_fine",
            vec![Self::resid_model(
                "resid_fine",
                self.u[lt - 1].layout(),
                self.v.layout(),
                self.r[lt - 1].layout(),
                e,
            )],
        ));
        let n = self.cfg.n;
        let r_fine = self.r[lt - 1].layout();
        phases.push(PhaseModel::new(
            "rnm2",
            vec![LoopModel::reduction(
                "rnm2",
                n,
                Schedule::Static,
                move |z, emit| {
                    for y in 0..n {
                        for x in 0..n {
                            emit(r_fine.vaddr_of(gidx(n, x, y, z)), Read);
                        }
                    }
                },
            )],
        ));
        phases
    }

    /// The standalone fine-grid residual phase bracketing the cold start.
    fn resid_init_phase(&self) -> crate::model::PhaseModel {
        let lt = self.cfg.lt;
        crate::model::PhaseModel::new(
            "resid_init",
            vec![Self::resid_model(
                "resid_init",
                self.u[lt - 1].layout(),
                self.v.layout(),
                self.r[lt - 1].layout(),
                self.cfg.edge(lt - 1),
            )],
        )
    }

    /// Reset solution state (between cold start and the timed run).
    fn reset_state(&mut self) {
        for u in &self.u {
            u.fill(0.0);
        }
        for r in &self.r {
            r.fill(0.0);
        }
        self.rnm2.clear();
    }
}

impl NasBenchmark for Mg {
    fn name(&self) -> BenchName {
        BenchName::Mg
    }

    fn iterations(&self) -> usize {
        self.cfg.niter
    }

    fn cold_start(&mut self, rt: &mut Runtime) {
        // Initial residual (r = v on the finest grid, with u = 0), then one
        // discarded V-cycle to fault every level's pages.
        let lt = self.cfg.lt;
        let e = self.cfg.edge(lt - 1);
        Self::resid(rt, &self.u[lt - 1], &self.v, &self.r[lt - 1], e);
        let _ = self.cycle(rt);
        self.reset_state();
        // Re-establish the initial residual for the timed run.
        Self::resid(rt, &self.u[lt - 1], &self.v, &self.r[lt - 1], e);
    }

    fn iterate(&mut self, rt: &mut Runtime, _hook: &mut PhaseHook<'_>) {
        let norm = self.cycle(rt);
        self.rnm2.push(norm);
    }

    fn register_hot(&self, upm: &mut UpmEngine) {
        for u in &self.u {
            upm.memrefcnt(u);
        }
        for r in &self.r {
            upm.memrefcnt(r);
        }
        upm.memrefcnt(&self.v);
    }

    fn verify(&self) -> Verification {
        // Multigrid must reduce the residual norm from ||v|| and keep
        // reducing it monotonically across V-cycles.
        let Some(&last) = self.rnm2.last() else {
            return Verification::check(f64::NAN, 0.0, 0.0);
        };
        let monotone = self.rnm2.windows(2).all(|w| w[1] <= w[0] * 1.0001);
        let reduced = last < 0.5 * self.initial_rnm2;
        Verification {
            passed: monotone && reduced && last.is_finite(),
            value: last,
            reference: self.initial_rnm2,
            epsilon: 0.5,
        }
    }

    fn access_model(&self) -> Option<crate::model::KernelModel> {
        // cold_start: initial fine residual, one discarded V-cycle, then
        // (after a host-only state reset) the fine residual again.
        let mut cold = vec![self.resid_init_phase()];
        cold.extend(self.cycle_phases());
        cold.push(self.resid_init_phase());
        let mut arrays = Vec::new();
        for u in &self.u {
            arrays.push(u.layout());
        }
        for r in &self.r {
            arrays.push(r.layout());
        }
        arrays.push(self.v.layout());
        Some(crate::model::KernelModel::new(
            BenchName::Mg,
            arrays,
            cold,
            self.cycle_phases(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::no_phase_hook;
    use ccnuma::{Machine, MachineConfig};

    fn rt() -> Runtime {
        Runtime::new(Machine::new(MachineConfig::origin2000_16p()))
    }

    #[test]
    fn a_weights_annihilate_constants() {
        // center + 6*face + 12*edge + 8*corner must be 0.
        let total = A_WEIGHTS[0] + 6.0 * A_WEIGHTS[1] + 12.0 * A_WEIGHTS[2] + 8.0 * A_WEIGHTS[3];
        assert!(total.abs() < 1e-12, "{total}");
    }

    #[test]
    fn resid_of_constant_field_is_rhs() {
        let mut rt = rt();
        let n = 4;
        let m = rt.machine_mut();
        let u = SimArray::new(m, "u", n * n * n, 7.5);
        let v = SimArray::new(m, "v", n * n * n, 2.0);
        let r = SimArray::new(m, "r", n * n * n, 0.0);
        Mg::resid(&mut rt, &u, &v, &r, n);
        for i in 0..n * n * n {
            assert!((r.peek(i) - 2.0).abs() < 1e-12, "A(const) must vanish");
        }
    }

    #[test]
    fn restriction_preserves_constant_fields() {
        let mut rt = rt();
        let m = 4;
        let machine = rt.machine_mut();
        let fine = SimArray::new(machine, "f", (2 * m) * (2 * m) * (2 * m), 3.0);
        let coarse = SimArray::new(machine, "c", m * m * m, 0.0);
        Mg::rprj3(&mut rt, &fine, &coarse, m);
        // Weights sum: (0.5 + 6*0.25 + 12*0.125 + 8*0.0625)/4 = 1.
        for i in 0..m * m * m {
            assert!(
                (coarse.peek(i) - 3.0).abs() < 1e-12,
                "got {}",
                coarse.peek(i)
            );
        }
    }

    #[test]
    fn interp_preserves_constant_fields() {
        let mut rt = rt();
        let m = 4;
        let machine = rt.machine_mut();
        let coarse = SimArray::new(machine, "c", m * m * m, 2.0);
        let fine = SimArray::new(machine, "f", (2 * m) * (2 * m) * (2 * m), 0.0);
        Mg::interp(&mut rt, &coarse, &fine, m);
        for i in 0..(2 * m) * (2 * m) * (2 * m) {
            assert!((fine.peek(i) - 2.0).abs() < 1e-12, "got {}", fine.peek(i));
        }
    }

    #[test]
    fn mg_reduces_residual_and_verifies() {
        let mut rt = rt();
        let mut mg = Mg::new(&mut rt, Scale::Tiny);
        mg.cold_start(&mut rt);
        let mut hook = no_phase_hook();
        for _ in 0..mg.iterations() {
            mg.iterate(&mut rt, &mut hook);
        }
        let v = mg.verify();
        assert!(
            v.passed,
            "rnm2 sequence {:?} from initial {}",
            mg.rnm2, mg.initial_rnm2
        );
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut rt = rt();
            let mut mg = Mg::new(&mut rt, Scale::Tiny);
            mg.cold_start(&mut rt);
            let mut hook = no_phase_hook();
            mg.iterate(&mut rt, &mut hook);
            (mg.rnm2[0], rt.machine().clock().now_ns())
        };
        assert_eq!(run(), run());
    }
}
