//! The zero-cost-when-disabled trace sink the simulator hot paths hold.
//!
//! `TraceSink::Null` is a unit variant, so every instrumentation site costs
//! exactly one discriminant branch when tracing is off; event construction
//! is deferred behind a closure so no payload is built unless the sink is
//! active. The `Active` variant boxes the tracer to keep the sink one word
//! plus discriminant inside `Machine`.

use crate::event::{Event, EventKind};
use crate::metrics::MetricsRegistry;
use crate::ring::EventRing;

/// Collected trace state: the event ring plus the metrics registry.
#[derive(Debug, Clone)]
pub struct Tracer {
    pub ring: EventRing,
    pub metrics: MetricsRegistry,
}

impl Tracer {
    pub fn new(capacity: usize) -> Self {
        Tracer {
            ring: EventRing::new(capacity),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Events the bounded ring had to evict (0 means the collected trace is
    /// complete). Exporters stamp this into their output so a truncated
    /// profile is visibly truncated.
    pub fn dropped_events(&self) -> u64 {
        self.ring.dropped()
    }
}

#[derive(Debug, Default)]
pub enum TraceSink {
    /// Tracing off: every emit is a single not-taken branch.
    #[default]
    Null,
    Active(Box<Tracer>),
}

impl TraceSink {
    /// An active sink with an event ring of `capacity`.
    pub fn enabled(capacity: usize) -> Self {
        TraceSink::Active(Box::new(Tracer::new(capacity)))
    }

    #[inline]
    pub fn is_active(&self) -> bool {
        matches!(self, TraceSink::Active(_))
    }

    /// Record an event at simulated time `t_ns`. The payload closure only
    /// runs when the sink is active.
    #[inline]
    pub fn emit(&mut self, t_ns: f64, kind: impl FnOnce() -> EventKind) {
        if let TraceSink::Active(tracer) = self {
            tracer.ring.push(Event { t_ns, kind: kind() });
        }
    }

    /// Bump a named counter.
    #[inline]
    pub fn inc(&mut self, name: &'static str, delta: u64) {
        if let TraceSink::Active(tracer) = self {
            tracer.metrics.inc(name, delta);
        }
    }

    /// Record a histogram sample.
    #[inline]
    pub fn observe(&mut self, name: &'static str, value: u64) {
        if let TraceSink::Active(tracer) = self {
            tracer.metrics.observe(name, value);
        }
    }

    /// Set a named gauge.
    #[inline]
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        if let TraceSink::Active(tracer) = self {
            tracer.metrics.set_gauge(name, value);
        }
    }

    /// Detach the collected trace, leaving the sink disabled.
    pub fn take(&mut self) -> Option<Box<Tracer>> {
        match std::mem::take(self) {
            TraceSink::Null => None,
            TraceSink::Active(tracer) => Some(tracer),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_never_runs_the_payload_closure() {
        let mut sink = TraceSink::Null;
        let mut ran = false;
        sink.emit(1.0, || {
            ran = true;
            EventKind::PageFrozen { vpage: 0 }
        });
        assert!(!ran);
        assert!(!sink.is_active());
        assert!(sink.take().is_none());
    }

    #[test]
    fn active_sink_collects_events_and_metrics() {
        let mut sink = TraceSink::enabled(16);
        sink.emit(5.0, || EventKind::RegionBegin { region: 1 });
        sink.inc("migrations", 2);
        sink.observe("latency_ns", 330);
        let tracer = sink.take().expect("active sink yields a tracer");
        assert_eq!(tracer.ring.len(), 1);
        assert_eq!(tracer.metrics.counter("migrations"), 2);
        assert!(!sink.is_active(), "take() leaves the sink Null");
    }
}
