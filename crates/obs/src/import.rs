//! Streaming reader for saved JSON Lines traces — the inverse of
//! [`crate::export::to_jsonl`].
//!
//! Traces are read line by line (never holding the raw text of more than
//! one record), so multi-hundred-megabyte traces from long runs load in
//! bounded memory. The first line is expected to be the schema header
//! written by the exporter; readers reject traces with an unknown *major*
//! version outright, accept any *minor* under a known major (additive
//! changes only), and still load headerless traces from before the header
//! existed — with a warning, since their `dropped_events` count is unknown.

use crate::event::{Event, EventKind};
use crate::export::{TRACE_SCHEMA_MAJOR, TRACE_SCHEMA_NAME};
use crate::json::Value;
use std::io::BufRead;
use std::path::Path;

/// A loaded trace: the decoded events plus everything the header said.
#[derive(Debug, Default)]
pub struct LoadedTrace {
    /// Decoded events, in file order (the exporter writes oldest first).
    pub events: Vec<Event>,
    /// Ring evictions the exporter recorded (0 for a complete trace;
    /// 0 with a warning for a headerless legacy trace).
    pub dropped_events: u64,
    /// `(major, minor)` from the header; `None` for a legacy trace.
    pub schema: Option<(u64, u64)>,
    /// Non-fatal oddities: missing header, unknown event names (skipped),
    /// malformed records (skipped).
    pub warnings: Vec<String>,
}

/// A fatal import failure.
#[derive(Debug, PartialEq, Eq)]
pub enum ImportError {
    /// The header declares a major version this reader does not understand.
    UnsupportedMajor { found: u64, supported: u64 },
    /// The file could not be read at all.
    Io(String),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::UnsupportedMajor { found, supported } => write!(
                f,
                "trace schema major version {found} is not supported (this reader \
                 understands major {supported}); re-export the trace with a matching build"
            ),
            ImportError::Io(e) => write!(f, "cannot read trace: {e}"),
        }
    }
}

impl std::error::Error for ImportError {}

/// Load a trace from a file, streaming line by line.
pub fn load_path(path: &Path) -> Result<LoadedTrace, ImportError> {
    let file = std::fs::File::open(path)
        .map_err(|e| ImportError::Io(format!("{}: {e}", path.display())))?;
    let reader = std::io::BufReader::new(file);
    from_lines(reader.lines().map_while(Result::ok))
}

/// Parse a trace held in memory (tests, small traces).
pub fn parse_jsonl(text: &str) -> Result<LoadedTrace, ImportError> {
    from_lines(text.lines().map(str::to_string))
}

/// The streaming core: consume lines one at a time.
pub fn from_lines(lines: impl Iterator<Item = String>) -> Result<LoadedTrace, ImportError> {
    let mut out = LoadedTrace::default();
    let mut first = true;
    let mut skipped_unknown = 0usize;
    let mut skipped_malformed = 0usize;
    for (lineno, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = match Value::parse(line) {
            Ok(v) => v,
            Err(_) => {
                skipped_malformed += 1;
                if skipped_malformed == 1 {
                    out.warnings
                        .push(format!("line {}: not valid JSON (skipped)", lineno + 1));
                }
                first = false;
                continue;
            }
        };
        if first {
            first = false;
            if value.get("schema").and_then(Value::as_str) == Some(TRACE_SCHEMA_NAME) {
                let major = value.get("major").and_then(Value::as_u64).unwrap_or(0);
                let minor = value.get("minor").and_then(Value::as_u64).unwrap_or(0);
                if major != TRACE_SCHEMA_MAJOR {
                    return Err(ImportError::UnsupportedMajor {
                        found: major,
                        supported: TRACE_SCHEMA_MAJOR,
                    });
                }
                out.schema = Some((major, minor));
                out.dropped_events = value
                    .get("dropped_events")
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                continue;
            }
            out.warnings.push(
                "trace has no schema header (pre-versioning export): assuming schema 1.x, \
                 dropped-event count unknown"
                    .to_string(),
            );
            // Fall through: the first line is already an event record.
        }
        match decode_event(&value) {
            Some(event) => out.events.push(event),
            None => {
                skipped_unknown += 1;
                if skipped_unknown == 1 {
                    let name = value.get("event").and_then(Value::as_str).unwrap_or("?");
                    out.warnings.push(format!(
                        "line {}: unknown or malformed event '{name}' (skipped; minor \
                         schema drift is tolerated)",
                        lineno + 1
                    ));
                }
            }
        }
    }
    if skipped_unknown > 1 {
        out.warnings
            .push(format!("{skipped_unknown} events skipped in total"));
    }
    if skipped_malformed > 1 {
        out.warnings.push(format!(
            "{skipped_malformed} malformed lines skipped in total"
        ));
    }
    Ok(out)
}

/// Decode one exported event record.
fn decode_event(value: &Value) -> Option<Event> {
    let t_ns = value.get("t_ns").and_then(Value::as_f64)?;
    let name = value.get("event").and_then(Value::as_str)?;
    let kind = EventKind::from_json_fields(name, value)?;
    Some(Event { t_ns, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::to_jsonl;

    fn sample() -> Vec<Event> {
        vec![
            Event {
                t_ns: 10.0,
                kind: EventKind::RegionBegin { region: 4 },
            },
            Event {
                t_ns: 20.0,
                kind: EventKind::PageCounterSample {
                    vpage: 9,
                    home: 1,
                    local: 3,
                    rmax: 40,
                    rnode: 5,
                },
            },
        ]
    }

    #[test]
    fn round_trips_exported_traces() {
        let events = sample();
        let text = to_jsonl(events.iter(), 2);
        let loaded = parse_jsonl(&text).unwrap();
        assert_eq!(loaded.events, events);
        assert_eq!(loaded.dropped_events, 2);
        assert_eq!(loaded.schema, Some((1, 1)));
        assert!(loaded.warnings.is_empty());
    }

    #[test]
    fn rejects_unknown_major_with_a_clear_error() {
        let text = "{\"schema\":\"ddnomp-trace\",\"major\":99,\"minor\":0,\"dropped_events\":0}\n";
        let err = parse_jsonl(text).unwrap_err();
        assert_eq!(
            err,
            ImportError::UnsupportedMajor {
                found: 99,
                supported: TRACE_SCHEMA_MAJOR
            }
        );
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn headerless_legacy_traces_load_with_a_warning() {
        let text = "{\"t_ns\":10,\"event\":\"RegionBegin\",\"region\":4}\n\
                    {\"t_ns\":30,\"event\":\"RegionEnd\",\"region\":4}\n";
        let loaded = parse_jsonl(text).unwrap();
        assert_eq!(loaded.events.len(), 2);
        assert_eq!(loaded.schema, None);
        assert!(loaded.warnings[0].contains("no schema header"));
    }

    #[test]
    fn unknown_event_names_are_skipped_not_fatal() {
        let mut text = to_jsonl(sample().iter(), 0);
        text.push_str("{\"t_ns\":99,\"event\":\"FromTheFuture\",\"x\":1}\n");
        let loaded = parse_jsonl(&text).unwrap();
        assert_eq!(loaded.events.len(), 2);
        assert!(loaded.warnings[0].contains("FromTheFuture"));
    }
}
