//! A small metrics registry: monotonic counters, last-value gauges, and
//! log2-bucket histograms (power-of-two latency buckets, like the kernel's
//! BPF histograms). Everything is keyed by a static name so hot paths never
//! allocate for the label.

use crate::json::Value;
use std::collections::BTreeMap;

/// Histogram over `u64` samples with one bucket per power of two:
/// bucket `i` counts samples `v` with `floor(log2(v)) == i` (bucket 0 also
/// takes `v == 0`).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    pub fn record(&mut self, value: u64) {
        let idx = 63 - value.max(1).leading_zeros() as usize;
        self.buckets[idx] += 1;
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        // Saturate rather than wrap: a histogram fed u64::MAX-scale samples
        // (ns totals over long runs) must keep a sane, monotone sum.
        self.sum = self.sum.saturating_add(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        self.min
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(bucket_floor, count)`, where `bucket_floor`
    /// is the smallest value the bucket admits (`2^i`, or 0 for bucket 0).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }

    /// Smallest bucket floor such that at least `q` (0..=1) of the samples
    /// fall in it or below — a coarse quantile, bucket-resolution only.
    pub fn quantile_floor(&self, q: f64) -> u64 {
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }
}

/// Named counters, gauges, and histograms for one traced run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order (exposition formatters iterate these).
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Full registry as one JSON object (for `metrics.json`-style dumps).
    pub fn to_json(&self) -> Value {
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.to_string(), (*v).into()))
                .collect(),
        );
        let gauges = Value::Object(
            self.gauges
                .iter()
                .map(|(k, v)| (k.to_string(), (*v).into()))
                .collect(),
        );
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Value::Array(
                        h.nonzero_buckets()
                            .into_iter()
                            .map(|(floor, count)| {
                                Value::object(vec![("ge", floor.into()), ("count", count.into())])
                            })
                            .collect(),
                    );
                    (
                        k.to_string(),
                        Value::object(vec![
                            ("count", h.count().into()),
                            ("sum", h.sum().into()),
                            ("min", h.min().into()),
                            ("max", h.max().into()),
                            ("mean", h.mean().into()),
                            ("buckets", buckets),
                        ]),
                    )
                })
                .collect(),
        );
        Value::object(vec![
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        let buckets: std::collections::HashMap<u64, u64> =
            h.nonzero_buckets().into_iter().collect();
        assert_eq!(buckets[&0], 2); // 0 and 1
        assert_eq!(buckets[&2], 2); // 2 and 3
        assert_eq!(buckets[&4], 1); // 4
        assert_eq!(buckets[&512], 1); // 1000
        assert_eq!(buckets[&1024], 1); // 1024
    }

    #[test]
    fn quantiles_are_bucket_resolution() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(8);
        }
        h.record(1 << 20);
        assert_eq!(h.quantile_floor(0.5), 8);
        assert_eq!(h.quantile_floor(1.0), 1 << 20);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
        // With no samples every quantile degenerates to the 0 bucket floor.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile_floor(q), 0, "q={q}");
        }
    }

    #[test]
    fn single_sample_pins_every_quantile() {
        let mut h = Histogram::default();
        h.record(300);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 300);
        assert_eq!(h.max(), 300);
        assert_eq!(h.mean(), 300.0);
        for q in [0.001, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile_floor(q), 256, "q={q}");
        }
        // q = 0 asks for "at least 0 samples": satisfied by the 0 bucket.
        assert_eq!(h.quantile_floor(0.0), 0);
    }

    #[test]
    fn all_equal_samples_collapse_to_one_bucket() {
        let mut h = Histogram::default();
        for _ in 0..1000 {
            h.record(4096);
        }
        assert_eq!(h.nonzero_buckets(), vec![(4096, 1000)]);
        assert_eq!(h.quantile_floor(0.01), 4096);
        assert_eq!(h.quantile_floor(1.0), 4096);
        assert_eq!(h.mean(), 4096.0);
    }

    #[test]
    fn saturating_counts_do_not_wrap_the_sum() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), u64::MAX);
        // Top bucket holds both samples; the quantile returns its floor.
        assert_eq!(h.quantile_floor(1.0), 1u64 << 63);
        // Quantiles out of range clamp instead of indexing out of bounds.
        assert_eq!(h.quantile_floor(7.0), 1u64 << 63);
        assert_eq!(h.quantile_floor(-1.0), 0);
    }

    #[test]
    fn registry_round_trips_to_json() {
        let mut m = MetricsRegistry::new();
        m.inc("migrations", 3);
        m.inc("migrations", 2);
        m.set_gauge("remote_fraction", 0.25);
        m.observe("latency_ns", 300);
        assert_eq!(m.counter("migrations"), 5);
        assert_eq!(m.gauge("remote_fraction"), Some(0.25));
        let v = m.to_json();
        assert_eq!(v["counters"]["migrations"].as_u64(), Some(5));
        assert_eq!(v["histograms"]["latency_ns"]["count"].as_u64(), Some(1));
    }
}
