//! A minimal JSON value with an emitter and a strict parser.
//!
//! The workspace builds offline (no serde), and the observability exporters
//! plus the experiment reports only need a small surface: build values,
//! print them (compact or pretty), parse them back for round-trip tests,
//! and index into objects/arrays. Object key order is preserved.

use std::fmt::Write as _;
use std::ops::Index;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Value::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Strict parse of a complete JSON document.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError {
                pos,
                message: "trailing characters".into(),
            });
        }
        Ok(value)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 && !(n == 0.0 && n.is_sign_negative()) {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{}` on f64 is shortest-round-trip, so parse(print(n)) == n
        // bit-for-bit — the result cache depends on this. Negative zero
        // takes this path too ("-0"), keeping its sign bit.
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact single-line rendering (pretty form: [`Value::to_string_pretty`]).
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub pos: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(pos: usize, message: &str) -> ParseError {
    ParseError {
        pos,
        message: message.to_string(),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{lit}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| err(start, "invalid number"))
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(n as f64)
            }
        }
    )*};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::Value;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::object(vec![
            ("id", "fig1".into()),
            ("n", 42u64.into()),
            ("ratio", 0.5.into()),
            ("tags", vec!["a", "b"].into()),
            (
                "nested",
                Value::object(vec![("ok", true.into()), ("none", Value::Null)]),
            ),
        ]);
        for text in [v.to_string(), v.to_string_pretty()] {
            let back = Value::parse(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn indexing_and_comparisons() {
        let v = Value::parse(r#"{"id":"table1","rows":[[1,2],[3,4]]}"#).unwrap();
        assert_eq!(v["id"], "table1");
        assert_eq!(v["rows"].as_array().unwrap().len(), 2);
        assert_eq!(v["rows"][1][0].as_u64(), Some(3));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn escapes_survive() {
        let v = Value::String("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(Value::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Number(3.0).to_string(), "3");
        assert_eq!(Value::Number(3.25).to_string(), "3.25");
        assert_eq!(Value::Number(f64::NAN).to_string(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{\"a\":}").is_err());
        assert!(Value::parse("[1,2,]").is_err());
        assert!(Value::parse("{} trailing").is_err());
    }
}
