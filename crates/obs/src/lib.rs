//! Observability for the ccNUMA simulation: typed events stamped with
//! simulated time, a bounded ring buffer, a metrics registry, and exporters.
//!
//! The paper's figures are *time-resolved* instrumentation artifacts (page
//! movement per iteration, migration overhead on the critical path), so the
//! simulator's hot paths emit structured [`event::Event`]s through a
//! [`sink::TraceSink`] that costs a single discriminant branch when disabled.
//! Collected traces export as JSON Lines ([`export::to_jsonl`], led by a
//! versioned schema header that also carries the ring's dropped-event
//! count) or as a Chrome trace-event file ([`export::chrome_trace`])
//! loadable in Perfetto, with the simulated nanosecond clock mapped onto
//! the trace timebase. Saved JSON Lines traces load back through the
//! streaming reader in [`import`].
//!
//! ```
//! use obs::{event::EventKind, sink::TraceSink};
//!
//! let mut sink = TraceSink::enabled(4096);
//! sink.emit(10.0, || EventKind::RegionBegin { region: 0 });
//! sink.emit(500.0, || EventKind::RegionEnd { region: 0 });
//! let tracer = sink.take().unwrap();
//! assert_eq!(tracer.ring.len(), 2);
//! let jsonl = obs::export::to_jsonl(tracer.ring.iter(), tracer.dropped_events());
//! assert!(jsonl.lines().count() == 3); // schema header + 2 events
//! let loaded = obs::import::parse_jsonl(&jsonl).unwrap();
//! assert_eq!(loaded.events.len(), 2);
//! ```

pub mod event;
pub mod expo;
pub mod export;
pub mod import;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod sink;

pub use event::{Event, EventKind};
pub use import::LoadedTrace;
pub use metrics::{Histogram, MetricsRegistry};
pub use ring::EventRing;
pub use sink::{TraceSink, Tracer};
