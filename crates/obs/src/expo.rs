//! Prometheus text exposition of a [`MetricsRegistry`].
//!
//! The service's `metrics` protocol op answers in two formats: the
//! registry's own JSON (`MetricsRegistry::to_json`) and the Prometheus
//! text format rendered here, so any standard scraper pointed at a thin
//! HTTP shim (or a human with `nc`) reads the same numbers the JSON
//! consumers do.
//!
//! Mapping:
//! * counters/gauges render one sample each, names sanitized to the
//!   Prometheus grammar (`svc.cache.hits` → `svc_cache_hits`);
//! * a log2-bucket [`Histogram`] renders as a cumulative Prometheus
//!   histogram: bucket `i` admits values up to `2^(i+1) - 1`, so that is
//!   its inclusive `le` bound (the 0-bucket, admitting {0, 1}, gets
//!   `le="1"`), followed by the mandatory `+Inf` bucket, `_sum`, and
//!   `_count` samples.

use crate::metrics::{Histogram, MetricsRegistry};
use std::fmt::Write as _;

/// A metric name reduced to the Prometheus grammar: `[a-zA-Z0-9_:]`,
/// everything else replaced by `_`, with a leading `_` prepended when the
/// name would start with a digit.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (floor, count) in h.nonzero_buckets() {
        cumulative += count;
        // Bucket floors are 0 or 2^i; the bucket's inclusive upper bound
        // is the largest value it admits.
        let le = if floor == 0 { 1 } else { 2 * floor - 1 };
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Render the whole registry in the Prometheus text exposition format
/// (version 0.0.4). Families are emitted in registry (name) order:
/// counters, then gauges, then histograms.
pub fn prometheus_text(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in registry.gauges() {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in registry.histograms() {
        render_histogram(&mut out, &sanitize_name(name), h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize_name("svc.cache.hits"), "svc_cache_hits");
        assert_eq!(sanitize_name("already_fine:ok"), "already_fine:ok");
        assert_eq!(sanitize_name("9lives"), "_9lives");
    }

    #[test]
    fn counters_and_gauges_render_one_sample_each() {
        let mut m = MetricsRegistry::new();
        m.inc("svc.requests.run.ok", 3);
        m.set_gauge("svc.queue_depth", 2.5);
        let text = prometheus_text(&m);
        assert!(text.contains("# TYPE svc_requests_run_ok counter\n"));
        assert!(text.contains("svc_requests_run_ok 3\n"));
        assert!(text.contains("# TYPE svc_queue_depth gauge\n"));
        assert!(text.contains("svc_queue_depth 2.5\n"));
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let mut m = MetricsRegistry::new();
        for v in [1u64, 3, 3, 300] {
            m.observe("lat.us", v);
        }
        let text = prometheus_text(&m);
        // Bucket [0,1] holds one sample; [2,3] two more; [256,511] the last.
        assert!(text.contains("# TYPE lat_us histogram\n"));
        assert!(text.contains("lat_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("lat_us_bucket{le=\"511\"} 4\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("lat_us_sum 307\n"));
        assert!(text.contains("lat_us_count 4\n"));
    }

    #[test]
    fn every_line_is_a_comment_or_name_value_sample() {
        let mut m = MetricsRegistry::new();
        m.inc("a.b", 1);
        m.set_gauge("c.d", 1.0);
        m.observe("e.f", 7);
        for line in prometheus_text(&m).lines() {
            if line.starts_with('#') {
                let mut parts = line.split_whitespace();
                assert_eq!(parts.next(), Some("#"));
                assert_eq!(parts.next(), Some("TYPE"));
                assert!(parts.next().is_some(), "family name in {line:?}");
                assert!(
                    matches!(parts.next(), Some("counter" | "gauge" | "histogram")),
                    "family kind in {line:?}"
                );
            } else {
                let mut parts = line.split_whitespace();
                let name = parts.next().expect("metric name");
                assert!(
                    name.chars().all(|c| c.is_ascii_alphanumeric()
                        || matches!(c, '_' | ':' | '{' | '}' | '=' | '"' | '+' | '.')),
                    "name grammar in {line:?}"
                );
                let value = parts.next().expect("sample value");
                assert!(value.parse::<f64>().is_ok(), "numeric value in {line:?}");
                assert_eq!(parts.next(), None, "exactly two fields in {line:?}");
            }
        }
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(prometheus_text(&MetricsRegistry::new()), "");
    }
}
