//! Bounded event storage: a ring that keeps the newest events and counts
//! what it had to drop, so a runaway trace can never exhaust memory.

use crate::event::Event;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
pub struct EventRing {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        // Grow lazily: a large bound must not preallocate a large buffer.
        EventRing {
            buf: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&mut self, event: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted so far (0 means the trace is complete).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Oldest-to-newest iteration.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Drain the ring oldest-to-newest, leaving it empty.
    pub fn drain(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(t: f64) -> Event {
        Event {
            t_ns: t,
            kind: EventKind::PageFrozen { vpage: t as u64 },
        }
    }

    #[test]
    fn keeps_newest_and_counts_drops() {
        let mut ring = EventRing::new(3);
        for t in 0..5 {
            ring.push(ev(t as f64));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let ts: Vec<f64> = ring.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut ring = EventRing::new(0);
        ring.push(ev(1.0));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.capacity(), 1);
    }

    #[test]
    fn drain_empties_in_order() {
        let mut ring = EventRing::new(8);
        ring.push(ev(1.0));
        ring.push(ev(2.0));
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert!(ring.is_empty());
        assert_eq!(events[0].t_ns, 1.0);
    }
}
