//! The event taxonomy: everything the simulator and the two migration
//! engines can report, stamped with the simulated-nanosecond clock.

use crate::json::Value;

/// One trace record: simulated time plus a typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated time in nanoseconds (the `GlobalClock` value at emission).
    pub t_ns: f64,
    pub kind: EventKind,
}

/// Typed payloads for every instrumented site.
///
/// Node and CPU ids are plain `usize` here so the crate stays free of
/// simulator dependencies (ccnuma depends on obs, not the reverse).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A page changed home node (any engine: kernel, UPMlib, or replay).
    PageMigrated { vpage: u64, from: usize, to: usize },
    /// The freeze tracker froze a ping-ponging page.
    PageFrozen { vpage: u64 },
    /// A competitive-criterion move was vetoed (frozen or cooling page).
    MoveVetoed { vpage: u64, from: usize, to: usize },
    /// Record-replay executed one replay list at a phase boundary.
    ReplayBatch { phase: usize, moved: usize },
    /// Record-replay undid one replay list (involution check path).
    Undo { phase: usize, moved: usize },
    /// A page gained a read replica on `node`.
    PageReplicated { vpage: u64, node: usize },
    /// A page's replicas were collapsed back to a single home copy.
    PageCollapsed { vpage: u64 },
    /// An 11-bit hardware reference counter saturated and spilled into the
    /// extended (software) counter.
    CounterOverflowSpill { frame: usize, node: usize },
    /// An OpenMP parallel region began (machine-level region protocol).
    RegionBegin { region: u64 },
    /// The matching region end.
    RegionEnd { region: u64 },
    /// One kernel migration-daemon scan: pages examined and pages moved.
    KernelScan { scanned: usize, migrated: usize },
    /// UPMlib turned itself off after an idle invocation (convergence).
    EngineDeactivated { invocation: usize },
    /// One outer benchmark iteration finished; aggregates for this iteration.
    IterationBoundary {
        iter: usize,
        migrations: u64,
        remote_fraction: f64,
        stall_ns: f64,
    },
    /// A job entered the kernel scheduler's run queue.
    JobArrived { job: usize },
    /// A scheduling quantum ended; `scheduled` jobs held CPUs during it.
    QuantumExpired { quantum: u64, scheduled: usize },
    /// The scheduler moved one thread of a job to a different CPU.
    ThreadMigrated {
        job: usize,
        thread: usize,
        from: usize,
        to: usize,
    },
    /// The scheduler shrank or grew a job's OpenMP team.
    TeamResized { job: usize, from: usize, to: usize },
    /// A page was mapped (first touch or eager placement) on `node`.
    PageMapped { vpage: u64, node: usize },
    /// Timing/locality breakdown of one just-closed parallel or serial
    /// region: corrected wall time plus the local/remote access and stall
    /// deltas accumulated across the region. `region` matches the id of the
    /// `RegionBegin`/`RegionEnd` pair.
    RegionProfile {
        region: u64,
        wall_ns: f64,
        local: u64,
        remote: u64,
        stall_ns: f64,
    },
    /// One UPMlib `migrate_memory` invocation completed, having moved
    /// `moved` pages — the per-invocation decay curve, one point per event.
    UpmInvoked { invocation: usize, moved: usize },
    /// Competitive-criterion view of one hot page at a `migrate_memory`
    /// invocation: accesses from the home node (`local`), the dominant
    /// remote node (`rnode`) and its access count (`rmax`). The raw input
    /// of the profiler's access heatmaps.
    PageCounterSample {
        vpage: u64,
        home: usize,
        local: u64,
        rmax: u64,
        rnode: usize,
    },
}

impl EventKind {
    /// Stable event name used by both exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PageMigrated { .. } => "PageMigrated",
            EventKind::PageFrozen { .. } => "PageFrozen",
            EventKind::MoveVetoed { .. } => "MoveVetoed",
            EventKind::ReplayBatch { .. } => "ReplayBatch",
            EventKind::Undo { .. } => "Undo",
            EventKind::PageReplicated { .. } => "PageReplicated",
            EventKind::PageCollapsed { .. } => "PageCollapsed",
            EventKind::CounterOverflowSpill { .. } => "CounterOverflowSpill",
            EventKind::RegionBegin { .. } => "RegionBegin",
            EventKind::RegionEnd { .. } => "RegionEnd",
            EventKind::KernelScan { .. } => "KernelScan",
            EventKind::EngineDeactivated { .. } => "EngineDeactivated",
            EventKind::IterationBoundary { .. } => "IterationBoundary",
            EventKind::JobArrived { .. } => "JobArrived",
            EventKind::QuantumExpired { .. } => "QuantumExpired",
            EventKind::ThreadMigrated { .. } => "ThreadMigrated",
            EventKind::TeamResized { .. } => "TeamResized",
            EventKind::PageMapped { .. } => "PageMapped",
            EventKind::RegionProfile { .. } => "RegionProfile",
            EventKind::UpmInvoked { .. } => "UpmInvoked",
            EventKind::PageCounterSample { .. } => "PageCounterSample",
        }
    }

    /// Payload fields as JSON pairs (used by both exporters).
    pub fn fields(&self) -> Vec<(&'static str, Value)> {
        match *self {
            EventKind::PageMigrated { vpage, from, to } => {
                vec![
                    ("vpage", vpage.into()),
                    ("from", from.into()),
                    ("to", to.into()),
                ]
            }
            EventKind::PageFrozen { vpage } => vec![("vpage", vpage.into())],
            EventKind::MoveVetoed { vpage, from, to } => {
                vec![
                    ("vpage", vpage.into()),
                    ("from", from.into()),
                    ("to", to.into()),
                ]
            }
            EventKind::ReplayBatch { phase, moved } => {
                vec![("phase", phase.into()), ("moved", moved.into())]
            }
            EventKind::Undo { phase, moved } => {
                vec![("phase", phase.into()), ("moved", moved.into())]
            }
            EventKind::PageReplicated { vpage, node } => {
                vec![("vpage", vpage.into()), ("node", node.into())]
            }
            EventKind::PageCollapsed { vpage } => vec![("vpage", vpage.into())],
            EventKind::CounterOverflowSpill { frame, node } => {
                vec![("frame", frame.into()), ("node", node.into())]
            }
            EventKind::RegionBegin { region } | EventKind::RegionEnd { region } => {
                vec![("region", region.into())]
            }
            EventKind::KernelScan { scanned, migrated } => {
                vec![("scanned", scanned.into()), ("migrated", migrated.into())]
            }
            EventKind::EngineDeactivated { invocation } => {
                vec![("invocation", invocation.into())]
            }
            EventKind::IterationBoundary {
                iter,
                migrations,
                remote_fraction,
                stall_ns,
            } => {
                vec![
                    ("iter", iter.into()),
                    ("migrations", migrations.into()),
                    ("remote_fraction", remote_fraction.into()),
                    ("stall_ns", stall_ns.into()),
                ]
            }
            EventKind::JobArrived { job } => vec![("job", job.into())],
            EventKind::QuantumExpired { quantum, scheduled } => {
                vec![("quantum", quantum.into()), ("scheduled", scheduled.into())]
            }
            EventKind::ThreadMigrated {
                job,
                thread,
                from,
                to,
            } => {
                vec![
                    ("job", job.into()),
                    ("thread", thread.into()),
                    ("from", from.into()),
                    ("to", to.into()),
                ]
            }
            EventKind::TeamResized { job, from, to } => {
                vec![
                    ("job", job.into()),
                    ("from", from.into()),
                    ("to", to.into()),
                ]
            }
            EventKind::PageMapped { vpage, node } => {
                vec![("vpage", vpage.into()), ("node", node.into())]
            }
            EventKind::RegionProfile {
                region,
                wall_ns,
                local,
                remote,
                stall_ns,
            } => {
                vec![
                    ("region", region.into()),
                    ("wall_ns", wall_ns.into()),
                    ("local", local.into()),
                    ("remote", remote.into()),
                    ("stall_ns", stall_ns.into()),
                ]
            }
            EventKind::UpmInvoked { invocation, moved } => {
                vec![("invocation", invocation.into()), ("moved", moved.into())]
            }
            EventKind::PageCounterSample {
                vpage,
                home,
                local,
                rmax,
                rnode,
            } => {
                vec![
                    ("vpage", vpage.into()),
                    ("home", home.into()),
                    ("local", local.into()),
                    ("rmax", rmax.into()),
                    ("rnode", rnode.into()),
                ]
            }
        }
    }

    /// Rebuild a payload from its exported `(name, fields)` form — the
    /// inverse of [`EventKind::name`] + [`EventKind::fields`], used by the
    /// JSON Lines importer. `None` when the name is unknown or a field is
    /// missing or mistyped.
    pub fn from_json_fields(name: &str, obj: &Value) -> Option<EventKind> {
        let u = |key: &str| obj.get(key).and_then(Value::as_u64);
        let us = |key: &str| u(key).map(|v| v as usize);
        let f = |key: &str| obj.get(key).and_then(Value::as_f64);
        Some(match name {
            "PageMigrated" => EventKind::PageMigrated {
                vpage: u("vpage")?,
                from: us("from")?,
                to: us("to")?,
            },
            "PageFrozen" => EventKind::PageFrozen { vpage: u("vpage")? },
            "MoveVetoed" => EventKind::MoveVetoed {
                vpage: u("vpage")?,
                from: us("from")?,
                to: us("to")?,
            },
            "ReplayBatch" => EventKind::ReplayBatch {
                phase: us("phase")?,
                moved: us("moved")?,
            },
            "Undo" => EventKind::Undo {
                phase: us("phase")?,
                moved: us("moved")?,
            },
            "PageReplicated" => EventKind::PageReplicated {
                vpage: u("vpage")?,
                node: us("node")?,
            },
            "PageCollapsed" => EventKind::PageCollapsed { vpage: u("vpage")? },
            "CounterOverflowSpill" => EventKind::CounterOverflowSpill {
                frame: us("frame")?,
                node: us("node")?,
            },
            "RegionBegin" => EventKind::RegionBegin {
                region: u("region")?,
            },
            "RegionEnd" => EventKind::RegionEnd {
                region: u("region")?,
            },
            "KernelScan" => EventKind::KernelScan {
                scanned: us("scanned")?,
                migrated: us("migrated")?,
            },
            "EngineDeactivated" => EventKind::EngineDeactivated {
                invocation: us("invocation")?,
            },
            "IterationBoundary" => EventKind::IterationBoundary {
                iter: us("iter")?,
                migrations: u("migrations")?,
                remote_fraction: f("remote_fraction")?,
                stall_ns: f("stall_ns")?,
            },
            "JobArrived" => EventKind::JobArrived { job: us("job")? },
            "QuantumExpired" => EventKind::QuantumExpired {
                quantum: u("quantum")?,
                scheduled: us("scheduled")?,
            },
            "ThreadMigrated" => EventKind::ThreadMigrated {
                job: us("job")?,
                thread: us("thread")?,
                from: us("from")?,
                to: us("to")?,
            },
            "TeamResized" => EventKind::TeamResized {
                job: us("job")?,
                from: us("from")?,
                to: us("to")?,
            },
            "PageMapped" => EventKind::PageMapped {
                vpage: u("vpage")?,
                node: us("node")?,
            },
            "RegionProfile" => EventKind::RegionProfile {
                region: u("region")?,
                wall_ns: f("wall_ns")?,
                local: u("local")?,
                remote: u("remote")?,
                stall_ns: f("stall_ns")?,
            },
            "UpmInvoked" => EventKind::UpmInvoked {
                invocation: us("invocation")?,
                moved: us("moved")?,
            },
            "PageCounterSample" => EventKind::PageCounterSample {
                vpage: u("vpage")?,
                home: us("home")?,
                local: u("local")?,
                rmax: u("rmax")?,
                rnode: us("rnode")?,
            },
            _ => return None,
        })
    }
}
