//! The event taxonomy: everything the simulator and the two migration
//! engines can report, stamped with the simulated-nanosecond clock.

use crate::json::Value;

/// One trace record: simulated time plus a typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated time in nanoseconds (the `GlobalClock` value at emission).
    pub t_ns: f64,
    pub kind: EventKind,
}

/// Typed payloads for every instrumented site.
///
/// Node and CPU ids are plain `usize` here so the crate stays free of
/// simulator dependencies (ccnuma depends on obs, not the reverse).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A page changed home node (any engine: kernel, UPMlib, or replay).
    PageMigrated { vpage: u64, from: usize, to: usize },
    /// The freeze tracker froze a ping-ponging page.
    PageFrozen { vpage: u64 },
    /// A competitive-criterion move was vetoed (frozen or cooling page).
    MoveVetoed { vpage: u64, from: usize, to: usize },
    /// Record-replay executed one replay list at a phase boundary.
    ReplayBatch { phase: usize, moved: usize },
    /// Record-replay undid one replay list (involution check path).
    Undo { phase: usize, moved: usize },
    /// A page gained a read replica on `node`.
    PageReplicated { vpage: u64, node: usize },
    /// A page's replicas were collapsed back to a single home copy.
    PageCollapsed { vpage: u64 },
    /// An 11-bit hardware reference counter saturated and spilled into the
    /// extended (software) counter.
    CounterOverflowSpill { frame: usize, node: usize },
    /// An OpenMP parallel region began (machine-level region protocol).
    RegionBegin { region: u64 },
    /// The matching region end.
    RegionEnd { region: u64 },
    /// One kernel migration-daemon scan: pages examined and pages moved.
    KernelScan { scanned: usize, migrated: usize },
    /// UPMlib turned itself off after an idle invocation (convergence).
    EngineDeactivated { invocation: usize },
    /// One outer benchmark iteration finished; aggregates for this iteration.
    IterationBoundary {
        iter: usize,
        migrations: u64,
        remote_fraction: f64,
        stall_ns: f64,
    },
    /// A job entered the kernel scheduler's run queue.
    JobArrived { job: usize },
    /// A scheduling quantum ended; `scheduled` jobs held CPUs during it.
    QuantumExpired { quantum: u64, scheduled: usize },
    /// The scheduler moved one thread of a job to a different CPU.
    ThreadMigrated {
        job: usize,
        thread: usize,
        from: usize,
        to: usize,
    },
    /// The scheduler shrank or grew a job's OpenMP team.
    TeamResized { job: usize, from: usize, to: usize },
}

impl EventKind {
    /// Stable event name used by both exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PageMigrated { .. } => "PageMigrated",
            EventKind::PageFrozen { .. } => "PageFrozen",
            EventKind::MoveVetoed { .. } => "MoveVetoed",
            EventKind::ReplayBatch { .. } => "ReplayBatch",
            EventKind::Undo { .. } => "Undo",
            EventKind::PageReplicated { .. } => "PageReplicated",
            EventKind::PageCollapsed { .. } => "PageCollapsed",
            EventKind::CounterOverflowSpill { .. } => "CounterOverflowSpill",
            EventKind::RegionBegin { .. } => "RegionBegin",
            EventKind::RegionEnd { .. } => "RegionEnd",
            EventKind::KernelScan { .. } => "KernelScan",
            EventKind::EngineDeactivated { .. } => "EngineDeactivated",
            EventKind::IterationBoundary { .. } => "IterationBoundary",
            EventKind::JobArrived { .. } => "JobArrived",
            EventKind::QuantumExpired { .. } => "QuantumExpired",
            EventKind::ThreadMigrated { .. } => "ThreadMigrated",
            EventKind::TeamResized { .. } => "TeamResized",
        }
    }

    /// Payload fields as JSON pairs (used by both exporters).
    pub fn fields(&self) -> Vec<(&'static str, Value)> {
        match *self {
            EventKind::PageMigrated { vpage, from, to } => {
                vec![
                    ("vpage", vpage.into()),
                    ("from", from.into()),
                    ("to", to.into()),
                ]
            }
            EventKind::PageFrozen { vpage } => vec![("vpage", vpage.into())],
            EventKind::MoveVetoed { vpage, from, to } => {
                vec![
                    ("vpage", vpage.into()),
                    ("from", from.into()),
                    ("to", to.into()),
                ]
            }
            EventKind::ReplayBatch { phase, moved } => {
                vec![("phase", phase.into()), ("moved", moved.into())]
            }
            EventKind::Undo { phase, moved } => {
                vec![("phase", phase.into()), ("moved", moved.into())]
            }
            EventKind::PageReplicated { vpage, node } => {
                vec![("vpage", vpage.into()), ("node", node.into())]
            }
            EventKind::PageCollapsed { vpage } => vec![("vpage", vpage.into())],
            EventKind::CounterOverflowSpill { frame, node } => {
                vec![("frame", frame.into()), ("node", node.into())]
            }
            EventKind::RegionBegin { region } | EventKind::RegionEnd { region } => {
                vec![("region", region.into())]
            }
            EventKind::KernelScan { scanned, migrated } => {
                vec![("scanned", scanned.into()), ("migrated", migrated.into())]
            }
            EventKind::EngineDeactivated { invocation } => {
                vec![("invocation", invocation.into())]
            }
            EventKind::IterationBoundary {
                iter,
                migrations,
                remote_fraction,
                stall_ns,
            } => {
                vec![
                    ("iter", iter.into()),
                    ("migrations", migrations.into()),
                    ("remote_fraction", remote_fraction.into()),
                    ("stall_ns", stall_ns.into()),
                ]
            }
            EventKind::JobArrived { job } => vec![("job", job.into())],
            EventKind::QuantumExpired { quantum, scheduled } => {
                vec![("quantum", quantum.into()), ("scheduled", scheduled.into())]
            }
            EventKind::ThreadMigrated {
                job,
                thread,
                from,
                to,
            } => {
                vec![
                    ("job", job.into()),
                    ("thread", thread.into()),
                    ("from", from.into()),
                    ("to", to.into()),
                ]
            }
            EventKind::TeamResized { job, from, to } => {
                vec![
                    ("job", job.into()),
                    ("from", from.into()),
                    ("to", to.into()),
                ]
            }
        }
    }
}
