//! Exporters: JSON Lines (one event per line, grep-friendly) and Chrome
//! trace-event format (open `trace.chrome.json` in Perfetto or
//! `chrome://tracing`). Both are keyed to simulated time: the Chrome `ts`
//! field is simulated microseconds, so the trace UI's timeline *is* the
//! simulated machine's timeline.
//!
//! JSON Lines output starts with a schema header line
//! (`{"schema":"ddnomp-trace","major":..,"minor":..,"dropped_events":..}`)
//! so readers can reject incompatible traces and see whether the bounded
//! event ring had to evict anything; [`crate::import`] is the matching
//! reader.

use crate::event::{Event, EventKind};
use crate::json::Value;

/// Schema identifier carried by the JSON Lines header line.
pub const TRACE_SCHEMA_NAME: &str = "ddnomp-trace";
/// Major trace-schema version: bumped on incompatible changes (removed or
/// retyped fields); readers reject other majors.
pub const TRACE_SCHEMA_MAJOR: u64 = 1;
/// Minor trace-schema version: bumped on additive changes (new event kinds
/// or fields); readers accept any minor under a known major.
pub const TRACE_SCHEMA_MINOR: u64 = 1;

/// The schema header object that leads a JSON Lines export.
pub fn schema_header(dropped_events: u64) -> Value {
    Value::object(vec![
        ("schema", TRACE_SCHEMA_NAME.into()),
        ("major", TRACE_SCHEMA_MAJOR.into()),
        ("minor", TRACE_SCHEMA_MINOR.into()),
        ("dropped_events", dropped_events.into()),
    ])
}

/// One compact JSON object per event, newline-delimited, led by the schema
/// header line carrying `dropped_events` (events the bounded ring evicted
/// before export — 0 means the trace is complete).
pub fn to_jsonl<'a>(events: impl Iterator<Item = &'a Event>, dropped_events: u64) -> String {
    let mut out = String::new();
    out.push_str(&schema_header(dropped_events).to_string());
    out.push('\n');
    for event in events {
        out.push_str(&event_to_json(event).to_string());
        out.push('\n');
    }
    out
}

/// One event as a flat JSON object: `{"t_ns":..,"event":..,<fields>}`.
pub fn event_to_json(event: &Event) -> Value {
    let mut pairs = vec![
        ("t_ns", event.t_ns.into()),
        ("event", event.kind.name().into()),
    ];
    pairs.extend(event.kind.fields());
    Value::object(pairs)
}

/// The full Chrome trace-event document (JSON object format).
///
/// Mapping: `RegionBegin`/`RegionEnd` become `B`/`E` duration events on one
/// track, so parallel regions render as spans; everything else is an
/// instant event (`i`, thread scope). Tracks are one synthetic pid/tid per
/// event family so Perfetto groups them sensibly. The document's top level
/// carries `dropped_events` so a truncated trace is visibly truncated.
pub fn chrome_trace<'a>(
    events: impl Iterator<Item = &'a Event>,
    process_name: &str,
    dropped_events: u64,
) -> Value {
    chrome_trace_with_extra(events, process_name, dropped_events, Vec::new())
}

/// [`chrome_trace`] plus caller-supplied extra trace entries — counter
/// tracks (`"ph":"C"`) and the like. Extra entries are appended after the
/// event entries; Perfetto orders by `ts`, so interleaving is irrelevant.
pub fn chrome_trace_with_extra<'a>(
    events: impl Iterator<Item = &'a Event>,
    process_name: &str,
    dropped_events: u64,
    extra: Vec<Value>,
) -> Value {
    let mut trace_events: Vec<Value> = Vec::new();
    trace_events.push(Value::object(vec![
        ("name", "process_name".into()),
        ("ph", "M".into()),
        ("pid", 1u64.into()),
        ("args", Value::object(vec![("name", process_name.into())])),
    ]));
    for event in events {
        let ts_us = event.t_ns / 1000.0;
        let (ph, tid) = match event.kind {
            EventKind::RegionBegin { .. } => ("B", 1u64),
            EventKind::RegionEnd { .. } => ("E", 1u64),
            EventKind::IterationBoundary { .. } => ("i", 2u64),
            EventKind::KernelScan { .. } => ("i", 3u64),
            _ => ("i", 4u64),
        };
        let args = Value::Object(
            event
                .kind
                .fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
        let mut pairs = vec![
            ("name", event.kind.name().into()),
            ("ph", ph.into()),
            ("ts", ts_us.into()),
            ("pid", 1u64.into()),
            ("tid", tid.into()),
        ];
        if ph == "i" {
            pairs.push(("s", "t".into()));
        }
        pairs.push(("args", args));
        trace_events.push(Value::object(pairs));
    }
    trace_events.extend(extra);
    Value::object(vec![
        ("traceEvents", Value::Array(trace_events)),
        ("displayTimeUnit", "ms".into()),
        ("dropped_events", dropped_events.into()),
    ])
}

/// One Perfetto counter sample (`"ph":"C"`): a named counter track takes
/// value `value` at simulated time `t_ns`. Multi-series tracks pass several
/// `(series, value)` pairs under the same `name`.
pub fn counter_sample(name: &str, t_ns: f64, series: Vec<(&str, Value)>) -> Value {
    Value::object(vec![
        ("name", name.into()),
        ("ph", "C".into()),
        ("ts", (t_ns / 1000.0).into()),
        ("pid", 1u64.into()),
        ("args", Value::object(series)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                t_ns: 100.0,
                kind: EventKind::RegionBegin { region: 0 },
            },
            Event {
                t_ns: 150.0,
                kind: EventKind::PageMigrated {
                    vpage: 7,
                    from: 0,
                    to: 2,
                },
            },
            Event {
                t_ns: 900.0,
                kind: EventKind::RegionEnd { region: 0 },
            },
        ]
    }

    #[test]
    fn jsonl_is_a_header_plus_one_valid_object_per_line() {
        let events = sample_events();
        let text = to_jsonl(events.iter(), 3);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let header = Value::parse(lines[0]).unwrap();
        assert_eq!(header["schema"], TRACE_SCHEMA_NAME);
        assert_eq!(header["major"].as_u64(), Some(TRACE_SCHEMA_MAJOR));
        assert_eq!(header["minor"].as_u64(), Some(TRACE_SCHEMA_MINOR));
        assert_eq!(header["dropped_events"].as_u64(), Some(3));
        let mig = Value::parse(lines[2]).unwrap();
        assert_eq!(mig["event"], "PageMigrated");
        assert_eq!(mig["vpage"].as_u64(), Some(7));
        assert_eq!(mig["t_ns"].as_f64(), Some(150.0));
    }

    #[test]
    fn chrome_trace_has_matched_spans_and_instants() {
        let events = sample_events();
        let doc = chrome_trace(events.iter(), "test-run", 0);
        let entries = doc["traceEvents"].as_array().unwrap();
        // metadata + 3 events
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[1]["ph"], "B");
        assert_eq!(entries[2]["ph"], "i");
        assert_eq!(entries[3]["ph"], "E");
        // ts is simulated µs.
        assert_eq!(entries[1]["ts"].as_f64(), Some(0.1));
        assert_eq!(doc["dropped_events"].as_u64(), Some(0));
        // The whole document parses back.
        assert!(Value::parse(&doc.to_string_pretty()).is_ok());
    }

    #[test]
    fn chrome_trace_appends_counter_tracks_and_stamps_drops() {
        let events = sample_events();
        let extra = vec![counter_sample(
            "migrations a",
            150.0,
            vec![("node2", 1u64.into())],
        )];
        let doc = chrome_trace_with_extra(events.iter(), "test-run", 7, extra);
        let entries = doc["traceEvents"].as_array().unwrap();
        assert_eq!(entries.len(), 5);
        let counter = &entries[4];
        assert_eq!(counter["ph"], "C");
        assert_eq!(counter["ts"].as_f64(), Some(0.15));
        assert_eq!(counter["args"]["node2"].as_u64(), Some(1));
        assert_eq!(doc["dropped_events"].as_u64(), Some(7));
    }
}
