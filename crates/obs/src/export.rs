//! Exporters: JSON Lines (one event per line, grep-friendly) and Chrome
//! trace-event format (open `trace.chrome.json` in Perfetto or
//! `chrome://tracing`). Both are keyed to simulated time: the Chrome `ts`
//! field is simulated microseconds, so the trace UI's timeline *is* the
//! simulated machine's timeline.

use crate::event::{Event, EventKind};
use crate::json::Value;

/// One compact JSON object per event, newline-delimited.
pub fn to_jsonl<'a>(events: impl Iterator<Item = &'a Event>) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event_to_json(event).to_string());
        out.push('\n');
    }
    out
}

/// One event as a flat JSON object: `{"t_ns":..,"event":..,<fields>}`.
pub fn event_to_json(event: &Event) -> Value {
    let mut pairs = vec![
        ("t_ns", event.t_ns.into()),
        ("event", event.kind.name().into()),
    ];
    pairs.extend(event.kind.fields());
    Value::object(pairs)
}

/// The full Chrome trace-event document (JSON object format).
///
/// Mapping: `RegionBegin`/`RegionEnd` become `B`/`E` duration events on one
/// track, so parallel regions render as spans; everything else is an
/// instant event (`i`, thread scope). Tracks are one synthetic pid/tid per
/// event family so Perfetto groups them sensibly.
pub fn chrome_trace<'a>(events: impl Iterator<Item = &'a Event>, process_name: &str) -> Value {
    let mut trace_events: Vec<Value> = Vec::new();
    trace_events.push(Value::object(vec![
        ("name", "process_name".into()),
        ("ph", "M".into()),
        ("pid", 1u64.into()),
        ("args", Value::object(vec![("name", process_name.into())])),
    ]));
    for event in events {
        let ts_us = event.t_ns / 1000.0;
        let (ph, tid) = match event.kind {
            EventKind::RegionBegin { .. } => ("B", 1u64),
            EventKind::RegionEnd { .. } => ("E", 1u64),
            EventKind::IterationBoundary { .. } => ("i", 2u64),
            EventKind::KernelScan { .. } => ("i", 3u64),
            _ => ("i", 4u64),
        };
        let args = Value::Object(
            event
                .kind
                .fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
        let mut pairs = vec![
            ("name", event.kind.name().into()),
            ("ph", ph.into()),
            ("ts", ts_us.into()),
            ("pid", 1u64.into()),
            ("tid", tid.into()),
        ];
        if ph == "i" {
            pairs.push(("s", "t".into()));
        }
        pairs.push(("args", args));
        trace_events.push(Value::object(pairs));
    }
    Value::object(vec![
        ("traceEvents", Value::Array(trace_events)),
        ("displayTimeUnit", "ms".into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                t_ns: 100.0,
                kind: EventKind::RegionBegin { region: 0 },
            },
            Event {
                t_ns: 150.0,
                kind: EventKind::PageMigrated {
                    vpage: 7,
                    from: 0,
                    to: 2,
                },
            },
            Event {
                t_ns: 900.0,
                kind: EventKind::RegionEnd { region: 0 },
            },
        ]
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let events = sample_events();
        let text = to_jsonl(events.iter());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let mig = Value::parse(lines[1]).unwrap();
        assert_eq!(mig["event"], "PageMigrated");
        assert_eq!(mig["vpage"].as_u64(), Some(7));
        assert_eq!(mig["t_ns"].as_f64(), Some(150.0));
    }

    #[test]
    fn chrome_trace_has_matched_spans_and_instants() {
        let events = sample_events();
        let doc = chrome_trace(events.iter(), "test-run");
        let entries = doc["traceEvents"].as_array().unwrap();
        // metadata + 3 events
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[1]["ph"], "B");
        assert_eq!(entries[2]["ph"], "i");
        assert_eq!(entries[3]["ph"], "E");
        // ts is simulated µs.
        assert_eq!(entries[1]["ts"].as_f64(), Some(0.1));
        // The whole document parses back.
        assert!(Value::parse(&doc.to_string_pretty()).is_ok());
    }
}
