//! Property-based tests of the UPMlib policies: the freeze tracker, the
//! competitive criterion, and the record–replay undo involution under
//! randomized traffic.

use ccnuma::{AccessKind, Machine, MachineConfig, SimArray, PAGE_SIZE};
use proptest::prelude::*;
use upmlib::{UpmEngine, UpmOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// However traffic is shaped, migrate_memory must (a) converge — once it
    /// reports 0 it stays inactive, (b) never exceed one migration per hot
    /// page per invocation, and (c) leave the frame accounting intact.
    #[test]
    fn migrate_memory_converges_and_balances(
        traffic in proptest::collection::vec((0usize..8, 0usize..4, 0u64..128), 1..400),
        extra_rounds in 1usize..4,
    ) {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let pages = 4usize;
        let a = SimArray::new(&mut m, "a", pages * (PAGE_SIZE / 8) as usize, 0.0f64);
        let total_frames = m.memory().total_frames();
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        let base = a.vrange().0;
        for _ in 0..extra_rounds {
            for &(cpu, page, line) in &traffic {
                m.touch(cpu, base + page as u64 * PAGE_SIZE + line * 128, AccessKind::Read);
            }
            let moved = upm.migrate_memory(&mut m);
            prop_assert!(moved <= pages);
            let mapped = m.mapped_pages().count();
            prop_assert_eq!(m.memory().total_free() + mapped, total_frames);
            if !upm.is_active() {
                // Deactivated: further calls are no-ops forever.
                prop_assert_eq!(upm.migrate_memory(&mut m), 0);
            }
        }
    }

    /// Replay followed by undo is an involution on the placement map,
    /// whatever the recorded phase traffic was.
    #[test]
    fn replay_undo_is_an_involution(
        phase1 in proptest::collection::vec((0usize..8, 0usize..4, 0u64..128), 1..150),
        phase2 in proptest::collection::vec((0usize..8, 0usize..4, 0u64..128), 1..150),
        repeats in 1usize..4,
    ) {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let pages = 4usize;
        let a = SimArray::new(&mut m, "a", pages * (PAGE_SIZE / 8) as usize, 0.0f64);
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        let base = a.vrange().0;
        let vp0 = ccnuma::vpage_of(base);
        // Fault all pages in deterministically.
        for p in 0..pages as u64 {
            m.touch(0, base + p * PAGE_SIZE, AccessKind::Read);
        }
        // Record two phases.
        let play = |m: &mut Machine, t: &[(usize, usize, u64)]| {
            for &(cpu, page, line) in t {
                m.touch(cpu, base + page as u64 * PAGE_SIZE + line * 128, AccessKind::Write);
            }
        };
        upm.record(&m);
        play(&mut m, &phase1);
        upm.record(&m);
        play(&mut m, &phase2);
        upm.record(&m);
        upm.compare_counters();
        let before: Vec<_> = (0..pages as u64).map(|p| m.node_of_vpage(vp0 + p)).collect();
        for _ in 0..repeats {
            upm.replay(&mut m);
            upm.replay(&mut m);
            upm.undo(&mut m);
            let after: Vec<_> = (0..pages as u64).map(|p| m.node_of_vpage(vp0 + p)).collect();
            prop_assert_eq!(&after, &before, "undo must restore the placement");
        }
    }

    /// The stats' invariants hold under arbitrary engine activity.
    #[test]
    fn stats_are_internally_consistent(
        traffic in proptest::collection::vec((0usize..8, 0usize..4, 0u64..128), 1..200),
    ) {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", 4 * (PAGE_SIZE / 8) as usize, 0.0f64);
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        let base = a.vrange().0;
        for round in 0..3 {
            for &(cpu, page, line) in &traffic {
                let kind = if (cpu + round) % 2 == 0 { AccessKind::Read } else { AccessKind::Write };
                m.touch(cpu, base + page as u64 * PAGE_SIZE + line * 128, kind);
            }
            if upm.is_active() {
                upm.migrate_memory(&mut m);
            }
        }
        let s = upm.stats();
        prop_assert!(s.first_invocation_fraction() >= 0.0);
        prop_assert!(s.first_invocation_fraction() <= 1.0);
        prop_assert_eq!(
            s.total_distribution_migrations(),
            s.migrations_per_invocation.iter().sum::<u64>()
        );
        prop_assert!(s.frozen_pages as usize <= 4);
    }
}
