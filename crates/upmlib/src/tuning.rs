//! UPMlib tunables.
//!
//! The paper exposes these as environment variables of the runtime system
//! ("we use an environment variable which instructs the mechanism to move
//! only the n most critical pages"); here they are a plain options struct.

/// Tuning knobs of the UPMlib engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpmOptions {
    /// Competitive-criterion threshold `thr`: a page is eligible for
    /// migration when `max_remote_accesses / local_accesses > thr`.
    pub thr: f64,
    /// Minimum counted accesses from the winning remote node before a page
    /// is considered at all — suppresses noise from barely-touched pages.
    pub min_accesses: u16,
    /// `n`, the number of most-critical pages the record–replay mechanism
    /// may move per phase transition (paper: "we set the number of critical
    /// pages to 20").
    pub critical_pages: usize,
    /// Freeze pages that bounce between two nodes in consecutive
    /// invocations (page-level false-sharing defense). On by default, as in
    /// the paper; the ablation experiment turns it off.
    pub freeze_ping_pong: bool,
}

impl Default for UpmOptions {
    fn default() -> Self {
        Self {
            thr: 2.0,
            min_accesses: 8,
            critical_pages: 20,
            freeze_ping_pong: true,
        }
    }
}

impl UpmOptions {
    /// The configuration used in the paper's record–replay experiments.
    pub fn paper_recrep() -> Self {
        Self {
            critical_pages: 20,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = UpmOptions::default();
        assert_eq!(o.critical_pages, 20);
        assert!(o.thr >= 1.0);
        assert!(o.freeze_ping_pong);
    }
}
