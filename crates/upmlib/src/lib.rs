//! **UPMlib** — the user-level page migration library of *"Is Data
//! Distribution Necessary in OpenMP?"* (SC 2000).
//!
//! UPMlib injects a dynamic page-migration engine into OpenMP programs and
//! uses it *in place of data distribution*. It is implemented entirely at
//! user level on two OS services: read access to the per-frame hardware
//! reference counters (the `/proc` interface, here [`vmm::ProcCounters`])
//! and best-effort page migration through Memory Locality Domains
//! ([`vmm::MldSet`]).
//!
//! Two mechanisms, mirroring §3.2 and §3.3 of the paper:
//!
//! * **Emulating data distribution** ([`UpmEngine::migrate_memory`]):
//!   whatever the initial page placement, record the reference trace of the
//!   first iteration of the (iterative) parallel program in the hardware
//!   counters and migrate every page that satisfies a competitive criterion
//!   to its most-frequently-accessing node. The engine re-runs in later
//!   iterations while it still finds pages to move, then self-deactivates;
//!   pages that bounce between two nodes in consecutive invocations
//!   (page-level false sharing) are frozen.
//!
//! * **Emulating data redistribution** ([`UpmEngine::record`] /
//!   [`UpmEngine::compare_counters`] / [`UpmEngine::replay`] /
//!   [`UpmEngine::undo`]): for programs with phase changes, record counter
//!   snapshots at phase boundaries during one iteration, isolate each
//!   phase's reference trace by subtraction, compute the page migrations
//!   that would improve that phase, and replay exactly those migrations at
//!   the same points of every subsequent iteration, undoing them at the end
//!   of the iteration. Only the `n` most critical pages (by remote:local
//!   access ratio) are moved, to bound the on-critical-path overhead.
//!
//! The calls map one-to-one to the instrumentation in the paper's Figures 2
//! and 3 (`upmlib_init`, `upmlib_memrefcnt`, `upmlib_migrate_memory`,
//! `upmlib_record`, `upmlib_compare_counters`, `upmlib_replay`,
//! `upmlib_undo`).
//!
//! # Example: data distribution, as in the paper's Figure 2
//!
//! ```
//! use ccnuma::{Machine, MachineConfig, SimArray};
//! use omp::{Runtime, Schedule};
//! use upmlib::{UpmEngine, UpmOptions};
//! use vmm::{install_placement, PlacementScheme};
//!
//! let mut machine = Machine::new(MachineConfig::tiny_test());
//! install_placement(&mut machine, PlacementScheme::RoundRobin);
//! let mut rt = Runtime::new(machine);
//!
//! let n = 8 * (ccnuma::PAGE_SIZE as usize / 8);
//! let u = SimArray::new(rt.machine_mut(), "u", n, 0.0f64);
//!
//! let mut upm = UpmEngine::new(rt.machine(), UpmOptions::default());
//! upm.memrefcnt(&u); // compiler-identified hot area
//!
//! for _step in 0..4 {
//!     rt.parallel_for(n, Schedule::Static, |par, i| {
//!         par.update(&u, i, |v| v + 1.0);
//!         par.flops(1);
//!     });
//!     if upm.is_active() {
//!         upm.migrate_memory(rt.machine_mut());
//!     }
//! }
//! // The engine moved the round-robin-placed pages toward their accessors
//! // and then deactivated itself.
//! assert!(!upm.is_active());
//! ```

pub mod engine;
pub mod freeze;
pub mod recrep;
pub mod replicate;
pub mod stats;
pub mod tuning;

pub use engine::UpmEngine;
pub use freeze::FreezeTracker;
pub use stats::UpmStats;
pub use tuning::UpmOptions;
