//! The record–replay mechanism: emulating data *redistribution*.
//!
//! Paper §3.3: a *phase* is a sequence of parallel constructs with a uniform
//! communication pattern; a phase change (e.g. the z-sweep of BT/SP after
//! x/y-aligned sweeps) distorts the locality that the initial distribution
//! established. Redistribution is approximated like this:
//!
//! * During one designated iteration, the program calls
//!   [`UpmEngine::record`] at every phase-transition point, snapshotting the
//!   hardware counters of the hot pages (vectors `V_{i,j}` in the paper).
//! * [`UpmEngine::compare_counters`] then isolates each phase's reference
//!   trace by subtracting consecutive snapshots (`U_{i,j} = V_{i,j} -
//!   V_{i,j-1}`), applies the competitive criterion to the isolated traces,
//!   and keeps only the `n` most critical pages per transition, ranked by
//!   their `raccmax/lacc` ratio.
//! * In every subsequent iteration, [`UpmEngine::replay`] is called at the
//!   same transition points and re-executes exactly those migrations, and
//!   [`UpmEngine::undo`] at the end of the iteration reverses them,
//!   recovering the iteration-start placement.
//!
//! Replayed migrations run **on the critical path** — the paper's Figure 5
//! charges their cost as a visible striped overhead segment — so the
//! mechanism only pays off when phases are long enough (Figure 6).

use crate::engine::{ReplayEntry, UpmEngine};
use ccnuma::Machine;
use vmm::procfs::PageView;

impl UpmEngine {
    /// `upmlib_record`: snapshot the hot pages' counters at a
    /// phase-transition point of the recording iteration.
    pub fn record(&mut self, machine: &Machine) {
        self.recordings.push(self.hot_page_views(machine));
    }

    /// Number of snapshots recorded so far.
    pub fn recordings(&self) -> usize {
        self.recordings.len()
    }

    /// `upmlib_compare_counters`: turn the recorded snapshots into per-phase
    /// replay lists. Requires at least two snapshots (k record points define
    /// k-1 phases). Returns the total number of migrations scheduled for
    /// replay.
    pub fn compare_counters(&mut self) -> usize {
        assert!(
            self.recordings.len() >= 2,
            "compare_counters needs at least two recorded snapshots"
        );
        self.replay_lists.clear();
        let mut scheduled = 0;
        for j in 1..self.recordings.len() {
            let (before, after) = (&self.recordings[j - 1], &self.recordings[j]);
            let mut candidates: Vec<(f64, ReplayEntry)> = Vec::new();
            for view_after in after {
                // Match by vpage; a page unmapped at `before` has no trace.
                let Some(view_before) = before.iter().find(|v| v.vpage == view_after.vpage) else {
                    continue;
                };
                let delta = phase_delta(view_before, view_after);
                let Some((ratio, target)) = self.competitive_candidate(&delta) else {
                    continue;
                };
                if target == delta.home {
                    continue;
                }
                candidates.push((
                    ratio,
                    ReplayEntry {
                        vpage: delta.vpage,
                        target,
                        original_home: delta.home,
                    },
                ));
            }
            // "the pages are sorted in descending order according to the
            // ratio raccmax/lacc ... the n pages with the highest ratios are
            // migrated" — ties break by vpage for determinism.
            candidates.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .expect("ratios are comparable")
                    .then(a.1.vpage.cmp(&b.1.vpage))
            });
            candidates.truncate(self.options.critical_pages);
            scheduled += candidates.len();
            self.replay_lists
                .push(candidates.into_iter().map(|(_, e)| e).collect());
        }
        self.recordings.clear();
        scheduled
    }

    /// `upmlib_replay`: execute the migrations recorded for the next phase
    /// transition of the current iteration. Returns pages moved.
    pub fn replay(&mut self, machine: &mut Machine) -> usize {
        let _hp = hostprof::span_hot("upmlib.replay");
        let Some(list) = self.replay_lists.get(self.replay_cursor) else {
            return 0;
        };
        self.replay_cursor += 1;
        let ns_before = machine.stats().migration_ns;
        let mut moved = 0;
        for entry in list.clone() {
            if machine.node_of_vpage(entry.vpage) == Some(entry.target) {
                continue;
            }
            if self
                .mlds
                .migrate_page(machine, entry.vpage, self.mlds.mld(entry.target))
                .is_ok()
            {
                self.undo_list.push((entry.vpage, entry.original_home));
                moved += 1;
            }
        }
        self.stats.replay_migrations += moved as u64;
        self.stats.recrep_ns += machine.stats().migration_ns - ns_before;
        let phase = self.replay_cursor - 1;
        machine.trace_event(|| obs::EventKind::ReplayBatch { phase, moved });
        machine.trace_mut().inc("replay_batches", 1);
        moved
    }

    /// `upmlib_undo`: reverse every migration replayed during this
    /// iteration, recovering the iteration-start placement, and rewind the
    /// replay cursor for the next iteration. Returns pages moved back.
    pub fn undo(&mut self, machine: &mut Machine) -> usize {
        let ns_before = machine.stats().migration_ns;
        let mut moved = 0;
        for (vpage, home) in std::mem::take(&mut self.undo_list) {
            if machine.node_of_vpage(vpage) == Some(home) {
                continue;
            }
            if self
                .mlds
                .migrate_page(machine, vpage, self.mlds.mld(home))
                .is_ok()
            {
                moved += 1;
            }
        }
        let phase = self.replay_cursor;
        self.replay_cursor = 0;
        self.stats.undo_migrations += moved as u64;
        self.stats.recrep_ns += machine.stats().migration_ns - ns_before;
        machine.trace_event(|| obs::EventKind::Undo { phase, moved });
        machine.trace_mut().inc("undo_batches", 1);
        moved
    }

    /// Pages scheduled per phase transition (diagnostics).
    pub fn replay_list_sizes(&self) -> Vec<usize> {
        self.replay_lists.iter().map(Vec::len).collect()
    }
}

/// Isolate one phase's trace: per-node counter difference of two snapshots
/// of the same page (saturating — the 11-bit counters may have clamped).
fn phase_delta(before: &PageView, after: &PageView) -> PageView {
    PageView {
        vpage: after.vpage,
        home: after.home,
        counts: after
            .counts
            .iter()
            .zip(&before.counts)
            .map(|(&a, &b)| a.saturating_sub(b))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UpmOptions;
    use ccnuma::{AccessKind, MachineConfig, SimArray, PAGE_SIZE};

    fn hammer(machine: &mut Machine, cpu: usize, base: u64, sweeps: usize) {
        for _ in 0..sweeps {
            for line in 0..(PAGE_SIZE / 128) {
                machine.touch(cpu, base + line * 128, AccessKind::Write);
                machine.touch(cpu, base + line * 128, AccessKind::Read);
            }
        }
    }

    /// Build a machine with one hot page homed on node 0 and an engine
    /// watching it.
    fn setup() -> (Machine, SimArray<f64>, UpmEngine) {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", (PAGE_SIZE / 8) as usize, 0.0f64);
        m.touch(0, a.vrange().0, AccessKind::Read); // first-touch on node 0
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        (m, a, upm)
    }

    #[test]
    fn record_compare_replay_undo_cycle() {
        let (mut m, a, mut upm) = setup();
        let base = a.vrange().0;
        let vp = ccnuma::vpage_of(base);

        // Recording iteration: phase X is node-0 dominated, phase Z is
        // node-3 dominated.
        hammer(&mut m, 0, base, 1); // phase X
        upm.record(&m); // transition point: X -> Z
        hammer(&mut m, 6, base, 3); // phase Z (node 3)
        upm.record(&m); // end of Z
        let scheduled = upm.compare_counters();
        assert_eq!(scheduled, 1);
        assert_eq!(upm.replay_list_sizes(), vec![1]);

        // Later iteration: replay before Z, undo at iteration end.
        assert_eq!(m.node_of_vpage(vp), Some(0));
        assert_eq!(upm.replay(&mut m), 1);
        assert_eq!(m.node_of_vpage(vp), Some(3));
        assert_eq!(upm.undo(&mut m), 1);
        assert_eq!(m.node_of_vpage(vp), Some(0), "undo recovers placement");

        // And again next iteration (cursor rewound).
        assert_eq!(upm.replay(&mut m), 1);
        assert_eq!(m.node_of_vpage(vp), Some(3));
        upm.undo(&mut m);
    }

    #[test]
    fn phase_delta_isolates_the_phase() {
        let before = PageView {
            vpage: 1,
            home: 0,
            counts: vec![100u64, 0, 5, 0],
        };
        let after = PageView {
            vpage: 1,
            home: 0,
            counts: vec![110, 0, 250, 0],
        };
        let d = phase_delta(&before, &after);
        assert_eq!(d.counts, vec![10, 0, 245, 0]);
        let (local, rmax, rnode) = d.competitive_view();
        assert_eq!((local, rmax, rnode), (10, 245, 2));
    }

    #[test]
    fn critical_pages_limit_is_enforced() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let pages = 8usize;
        let a = SimArray::new(&mut m, "a", pages * (PAGE_SIZE / 8) as usize, 0.0f64);
        let base = a.vrange().0;
        for p in 0..pages as u64 {
            m.touch(0, base + p * PAGE_SIZE, AccessKind::Read);
        }
        let mut upm = UpmEngine::new(
            &m,
            UpmOptions {
                critical_pages: 3,
                ..Default::default()
            },
        );
        upm.memrefcnt(&a);
        upm.record(&m);
        for p in 0..pages as u64 {
            hammer(&mut m, 6, base + p * PAGE_SIZE, 2);
        }
        upm.record(&m);
        let scheduled = upm.compare_counters();
        assert_eq!(scheduled, 3, "only the n most critical pages are scheduled");
        assert_eq!(upm.replay(&mut m), 3);
        assert_eq!(upm.undo(&mut m), 3);
    }

    #[test]
    fn stable_phase_schedules_nothing() {
        let (mut m, a, mut upm) = setup();
        let base = a.vrange().0;
        hammer(&mut m, 0, base, 1);
        upm.record(&m);
        hammer(&mut m, 0, base, 2); // same node dominates: no phase change
        upm.record(&m);
        assert_eq!(upm.compare_counters(), 0);
        assert_eq!(upm.replay(&mut m), 0);
        assert_eq!(upm.undo(&mut m), 0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn compare_without_records_panics() {
        let (m, _a, mut upm) = setup();
        upm.record(&m);
        upm.compare_counters();
    }

    #[test]
    fn recrep_overhead_is_accounted() {
        let (mut m, a, mut upm) = setup();
        let base = a.vrange().0;
        hammer(&mut m, 0, base, 1);
        upm.record(&m);
        hammer(&mut m, 6, base, 3);
        upm.record(&m);
        upm.compare_counters();
        upm.replay(&mut m);
        upm.undo(&mut m);
        let s = upm.stats();
        assert_eq!(s.replay_migrations, 1);
        assert_eq!(s.undo_migrations, 1);
        let expected = 2.0 * m.config().migration_cost_ns();
        assert!(
            (s.recrep_ns - expected).abs() < 1e-6,
            "recrep_ns {}",
            s.recrep_ns
        );
    }
}
