//! Engine statistics — the raw material of the paper's Table 2.
//!
//! Table 2 reports, per benchmark and placement scheme, (a) the residual
//! slowdown in the last 75% of the iterations and (b) the percentage of all
//! page migrations performed after the first iteration. (a) comes from the
//! experiment harness's timing; (b) comes from
//! [`UpmStats::first_invocation_fraction`].

/// Cumulative statistics of one [`crate::UpmEngine`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpmStats {
    /// Pages moved by `migrate_memory`, indexed by invocation (invocation 0
    /// is the one after the first iteration).
    pub migrations_per_invocation: Vec<u64>,
    /// Simulated ns charged for `migrate_memory` moves.
    pub distribution_ns: f64,
    /// Pages moved by `replay`.
    pub replay_migrations: u64,
    /// Pages moved back by `undo`.
    pub undo_migrations: u64,
    /// Simulated ns charged for record–replay moves (replay + undo) — the
    /// striped "non-overlapped migration overhead" of Figure 5.
    pub recrep_ns: f64,
    /// Pages frozen for ping-ponging.
    pub frozen_pages: u64,
    /// Candidate moves vetoed by the freeze tracker.
    pub vetoed_moves: u64,
    /// Read-only replicas created by the replication mechanism.
    pub replications: u64,
    /// Pages moved by `follow_rebind` — the scheduler-aware record–replay of
    /// an old placement after the OS migrated the job's threads.
    pub rebind_replays: u64,
    /// Simulated ns charged for `follow_rebind` moves.
    pub rebind_replay_ns: f64,
}

impl UpmStats {
    /// Total pages moved by the distribution mechanism.
    pub fn total_distribution_migrations(&self) -> u64 {
        self.migrations_per_invocation.iter().sum()
    }

    /// Fraction of distribution migrations performed by the engine's first
    /// invocation (after the first iteration). Table 2 reports this as a
    /// percentage; the paper measures 78%–100%.
    pub fn first_invocation_fraction(&self) -> f64 {
        let total = self.total_distribution_migrations();
        if total == 0 {
            return 1.0;
        }
        self.migrations_per_invocation.first().copied().unwrap_or(0) as f64 / total as f64
    }

    /// Total record–replay moves (replays plus undos).
    pub fn total_recrep_migrations(&self) -> u64 {
        self.replay_migrations + self.undo_migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_invocation_fraction() {
        let s = UpmStats {
            migrations_per_invocation: vec![90, 10],
            ..Default::default()
        };
        assert!((s.first_invocation_fraction() - 0.9).abs() < 1e-12);
        assert_eq!(s.total_distribution_migrations(), 100);
    }

    #[test]
    fn no_migrations_counts_as_all_first() {
        let s = UpmStats::default();
        assert_eq!(s.first_invocation_fraction(), 1.0);
        // Invocations that all moved zero pages are the same edge case: the
        // total is zero, so the fraction must not divide by it.
        let idle = UpmStats {
            migrations_per_invocation: vec![0, 0, 0],
            ..Default::default()
        };
        assert_eq!(idle.first_invocation_fraction(), 1.0);
    }

    #[test]
    fn single_invocation_is_all_first() {
        let s = UpmStats {
            migrations_per_invocation: vec![42],
            ..Default::default()
        };
        assert_eq!(s.first_invocation_fraction(), 1.0);
        assert_eq!(s.total_distribution_migrations(), 42);
    }

    #[test]
    fn late_only_migrations_are_zero_fraction() {
        // A quiet first invocation followed by real work: fraction 0, the
        // opposite extreme of the paper's measured 78%-100%.
        let s = UpmStats {
            migrations_per_invocation: vec![0, 10],
            ..Default::default()
        };
        assert_eq!(s.first_invocation_fraction(), 0.0);
    }

    #[test]
    fn recrep_totals_sum_replay_and_undo() {
        let s = UpmStats {
            replay_migrations: 8,
            undo_migrations: 5,
            ..Default::default()
        };
        assert_eq!(s.total_recrep_migrations(), 13);
    }
}
