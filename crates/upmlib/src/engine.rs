//! The UPMlib engine core: hot-area registration and the iterative
//! competitive-migration mechanism that emulates data distribution.

use crate::freeze::FreezeTracker;
use crate::stats::UpmStats;
use crate::tuning::UpmOptions;
use ccnuma::{Machine, NodeId, SimArray};
use vmm::procfs::PageView;
use vmm::{MldSet, ProcCounters};

/// The user-level page migration engine (`upmlib_init` creates one).
///
/// Construction, hot-area registration and the distribution mechanism live
/// here; the record–replay redistribution mechanism is in
/// [`crate::recrep`] (same type, second `impl` block).
pub struct UpmEngine {
    pub(crate) options: UpmOptions,
    /// Hot memory areas `(base, byte_len)` registered by `memrefcnt` — the
    /// shared arrays the compiler identifies as both read and written in
    /// disjoint parallel constructs.
    pub(crate) hot_areas: Vec<(u64, u64)>,
    pub(crate) mlds: MldSet,
    pub(crate) proc: ProcCounters,
    pub(crate) freeze: FreezeTracker,
    pub(crate) stats: UpmStats,
    /// Distribution-mechanism invocation counter.
    pub(crate) invocations: u64,
    /// Self-deactivation flag: cleared the first time `migrate_memory`
    /// finds nothing to move.
    pub(crate) active: bool,
    // ---- record–replay state (see recrep.rs) ----
    pub(crate) recordings: Vec<Vec<PageView>>,
    pub(crate) replay_lists: Vec<Vec<ReplayEntry>>,
    pub(crate) replay_cursor: usize,
    pub(crate) undo_list: Vec<(u64, NodeId)>,
    /// Read-only replication state (see `replicate.rs`).
    pub(crate) replication: crate::replicate::ReplicationState,
    /// Pages whose freeze has already been traced (one PageFrozen event per
    /// page, not one per vetoed attempt).
    pub(crate) frozen_traced: std::collections::HashSet<u64>,
}

/// One migration the record–replay mechanism replays each iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ReplayEntry {
    pub vpage: u64,
    pub target: NodeId,
    pub original_home: NodeId,
}

impl UpmEngine {
    /// `upmlib_init`: create an engine for `machine`.
    pub fn new(machine: &Machine, options: UpmOptions) -> Self {
        Self {
            options,
            hot_areas: Vec::new(),
            mlds: MldSet::for_machine(machine),
            proc: ProcCounters,
            freeze: FreezeTracker::new(),
            stats: UpmStats::default(),
            invocations: 0,
            active: true,
            recordings: Vec::new(),
            replay_lists: Vec::new(),
            replay_cursor: 0,
            undo_list: Vec::new(),
            replication: crate::replicate::ReplicationState::default(),
            frozen_traced: std::collections::HashSet::new(),
        }
    }

    /// `upmlib_memrefcnt(addr, size)`: activate reference monitoring for a
    /// hot shared array.
    pub fn memrefcnt<T: Copy>(&mut self, array: &SimArray<T>) {
        self.hot_areas.push(array.vrange());
    }

    /// Register a raw `(base, byte_len)` range as hot.
    pub fn memrefcnt_range(&mut self, base: u64, len: u64) {
        self.hot_areas.push((base, len));
    }

    /// The registered hot areas, as `(base, byte_len)` ranges.
    pub fn hot_areas(&self) -> &[(u64, u64)] {
        &self.hot_areas
    }

    /// Whether the distribution mechanism is still armed (it self-deactivates
    /// the first time it finds no page to migrate).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Re-arm the distribution mechanism — used when the runtime learns
    /// that the reference pattern changed underneath it, e.g. after the OS
    /// scheduler rebinds threads to different processors (the
    /// multiprogramming scenario the paper defers to its companion work).
    /// Restarts the observation window and thaws the ping-pong freezer:
    /// the rebind legitimately changes every page's dominant node, so
    /// oscillation observed under the old binding is no longer evidence
    /// that a page is unstable — keeping pages frozen across rebinds would
    /// permanently lock the placement to wherever the first rotation left
    /// it.
    pub fn reactivate(&mut self, machine: &Machine) {
        self.active = true;
        self.reset_counters(machine);
        self.freeze.thaw();
        self.frozen_traced.clear();
    }

    /// Scheduler-aware response to a thread migration: replay the tuned
    /// placement under the new binding instead of forgetting it. Threads
    /// moved `old[t] -> new[t]`; every hot page homed on a node that lost
    /// its threads is migrated to the node those threads moved to — "page
    /// migration follows thread migration", the behaviour the paper's
    /// companion work on multiprogrammed machines builds on.
    ///
    /// The replay is only well-defined when the thread moves induce a
    /// consistent node→node map (every thread leaving node A lands on the
    /// same node B) and the team size is unchanged. Otherwise — a team
    /// resize, or threads of one node scattered — the engine falls back to
    /// forget-and-relearn ([`Self::reactivate`]) and returns 0.
    ///
    /// Either way the engine ends re-armed with a fresh observation window,
    /// so the competitive mechanism cleans up whatever the replay missed.
    pub fn follow_rebind(&mut self, machine: &mut Machine, old: &[usize], new: &[usize]) -> usize {
        let moved = match self.rebind_node_map(machine, old, new) {
            Some(map) => self.replay_node_map(machine, &map),
            None => 0,
        };
        self.reactivate(machine);
        moved
    }

    /// The node→node map induced by a thread rebinding, if consistent.
    fn rebind_node_map(
        &self,
        machine: &Machine,
        old: &[usize],
        new: &[usize],
    ) -> Option<Vec<Option<NodeId>>> {
        if old.len() != new.len() || old.is_empty() {
            return None;
        }
        let topo = machine.topology();
        let mut map: Vec<Option<NodeId>> = vec![None; topo.nodes()];
        for (&o, &n) in old.iter().zip(new) {
            let (from, to) = (topo.node_of_cpu(o), topo.node_of_cpu(n));
            match map[from] {
                None => map[from] = Some(to),
                Some(prev) if prev == to => {}
                Some(_) => return None, // threads of one node scattered
            }
        }
        Some(map)
    }

    /// Migrate every hot page through `map` (old home node → new home node).
    fn replay_node_map(&mut self, machine: &mut Machine, map: &[Option<NodeId>]) -> usize {
        let migration_ns_before = machine.stats().migration_ns;
        let mut moved = 0usize;
        for view in self.hot_page_views(machine) {
            let Some(target) = map[view.home] else {
                continue;
            };
            if target == view.home {
                continue;
            }
            if self
                .mlds
                .migrate_page(machine, view.vpage, self.mlds.mld(target))
                .is_ok()
            {
                moved += 1;
            }
        }
        self.stats.rebind_replays += moved as u64;
        self.stats.rebind_replay_ns += machine.stats().migration_ns - migration_ns_before;
        moved
    }

    /// Engine statistics (Table 2 inputs).
    pub fn stats(&self) -> &UpmStats {
        &self.stats
    }

    /// The pages the ping-pong freezer has frozen, sorted by vpage — the
    /// dynamic ground truth for the static analyzer's differential suite.
    pub fn frozen_pages(&self) -> Vec<u64> {
        self.freeze.frozen_pages()
    }

    /// The engine's tuning options.
    pub fn options(&self) -> &UpmOptions {
        &self.options
    }

    /// Hot pages currently mapped, as counter views.
    pub(crate) fn hot_page_views(&self, machine: &Machine) -> Vec<PageView> {
        let mut views = Vec::new();
        for &(base, len) in &self.hot_areas {
            views.extend(self.proc.read_range(machine, base, len));
        }
        views
    }

    /// The competitive criterion of §3.3: is this page's reference pattern
    /// remote-dominated enough to justify moving it, and where to?
    /// Returns `(ratio, target_node)` for eligible pages.
    pub(crate) fn competitive_candidate(&self, view: &PageView) -> Option<(f64, NodeId)> {
        let (local, rmax, rnode) = view.competitive_view();
        if rmax < self.options.min_accesses as u64 {
            return None;
        }
        // raccmax / lacc > thr, with lacc == 0 treated as infinitely
        // remote-dominated.
        let ratio = if local == 0 {
            f64::INFINITY
        } else {
            rmax as f64 / local as f64
        };
        (ratio > self.options.thr).then_some((ratio, rnode))
    }

    /// Zero the hardware counters of every hot page — called when reference
    /// monitoring (re)starts, e.g. after the discarded cold-start iteration,
    /// so the first observation window covers exactly one timed iteration.
    /// Without this the 11-bit counters saturate during the cold start and
    /// every node reads 2047, destroying the dominance signal.
    pub fn reset_counters(&self, machine: &Machine) {
        for &(base, len) in &self.hot_areas {
            self.proc.reset_range(machine, base, len);
        }
    }

    /// `upmlib_migrate_memory`: scan the hot areas' counters, migrate every
    /// page that satisfies the competitive criterion to its dominant node,
    /// and reset the hot counters so the next invocation observes exactly
    /// one iteration's trace. Self-deactivates when nothing moves. Returns
    /// the number of pages migrated (the paper's `num_migrations`).
    pub fn migrate_memory(&mut self, machine: &mut Machine) -> usize {
        if !self.active {
            return 0;
        }
        let _hp = hostprof::span_hot("upmlib.migrate_memory");
        self.invocations += 1;
        let invocation = self.invocations;
        let views = self.hot_page_views(machine);
        if machine.trace_mut().is_active() {
            // Sample every hot page that saw traffic this observation
            // window: the raw input of the profiler's access heatmaps.
            for view in &views {
                if view.total() == 0 {
                    continue;
                }
                let (local, rmax, rnode) = view.competitive_view();
                let (vpage, home) = (view.vpage, view.home);
                machine.trace_event(|| obs::EventKind::PageCounterSample {
                    vpage,
                    home,
                    local,
                    rmax,
                    rnode,
                });
            }
        }
        // Deterministic order: scan in vpage order.
        let mut moved = 0usize;
        let migration_ns_before = machine.stats().migration_ns;
        for view in &views {
            let Some((_ratio, target)) = self.competitive_candidate(view) else {
                continue;
            };
            if target == view.home {
                continue;
            }
            if self.options.freeze_ping_pong
                && !self
                    .freeze
                    .approve(view.vpage, view.home, target, invocation)
            {
                self.stats.vetoed_moves += 1;
                let (vpage, from) = (view.vpage, view.home);
                machine.trace_event(|| obs::EventKind::MoveVetoed {
                    vpage,
                    from,
                    to: target,
                });
                machine.trace_mut().inc("upm_vetoed_moves", 1);
                if self.freeze.is_frozen(view.vpage) && self.frozen_traced.insert(view.vpage) {
                    machine.trace_event(|| obs::EventKind::PageFrozen { vpage });
                }
                continue;
            }
            if self
                .mlds
                .migrate_page(machine, view.vpage, self.mlds.mld(target))
                .is_ok()
            {
                moved += 1;
            }
        }
        self.stats.distribution_ns += machine.stats().migration_ns - migration_ns_before;
        self.stats.frozen_pages = self.freeze.frozen_count() as u64;
        self.stats.migrations_per_invocation.push(moved as u64);
        machine.trace_event(|| obs::EventKind::UpmInvoked {
            invocation: invocation as usize,
            moved,
        });
        // Fresh observation window for the next iteration.
        for &(base, len) in &self.hot_areas {
            self.proc.reset_range(machine, base, len);
        }
        if moved == 0 {
            self.active = false;
            machine.trace_event(|| obs::EventKind::EngineDeactivated {
                invocation: invocation as usize,
            });
        }
        machine.trace_mut().inc("upm_invocations", 1);
        moved
    }
}

impl std::fmt::Debug for UpmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpmEngine")
            .field("hot_areas", &self.hot_areas.len())
            .field("active", &self.active)
            .field("invocations", &self.invocations)
            .field("frozen", &self.freeze.frozen_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma::{AccessKind, MachineConfig, PAGE_SIZE};
    use vmm::{install_placement, PlacementScheme};

    /// Make `cpu` the dominant accessor of the page at `base`.
    fn hammer(machine: &mut Machine, cpu: usize, base: u64, sweeps: usize) {
        for _ in 0..sweeps {
            for line in 0..(PAGE_SIZE / 128) {
                machine.touch(cpu, base + line * 128, AccessKind::Write);
                machine.touch(cpu, base + line * 128, AccessKind::Read);
            }
        }
    }

    #[test]
    fn migrates_hot_page_to_dominant_node() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        install_placement(&mut m, PlacementScheme::WorstCase { node: 0 });
        let a = SimArray::new(&mut m, "a", (PAGE_SIZE / 8) as usize, 0.0f64);
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        // CPU 6 (node 3) is the real owner; page was placed on node 0.
        hammer(&mut m, 6, a.vrange().0, 2);
        let moved = upm.migrate_memory(&mut m);
        assert_eq!(moved, 1);
        assert_eq!(m.node_of_vpage(ccnuma::vpage_of(a.vrange().0)), Some(3));
        assert!(
            upm.is_active(),
            "engine stays armed after a productive pass"
        );
    }

    #[test]
    fn self_deactivates_when_quiescent() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", (PAGE_SIZE / 8) as usize, 0.0f64);
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        // First-touch placement by the dominant accessor: nothing to move.
        hammer(&mut m, 6, a.vrange().0, 2);
        assert_eq!(upm.migrate_memory(&mut m), 0);
        assert!(!upm.is_active());
        // Further calls are no-ops.
        hammer(&mut m, 0, a.vrange().0, 4);
        assert_eq!(upm.migrate_memory(&mut m), 0);
        assert_eq!(m.node_of_vpage(ccnuma::vpage_of(a.vrange().0)), Some(3));
    }

    #[test]
    fn counters_reset_between_invocations() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", (PAGE_SIZE / 8) as usize, 0.0f64);
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        hammer(&mut m, 6, a.vrange().0, 2);
        upm.migrate_memory(&mut m);
        let view = ProcCounters
            .read(&m, ccnuma::vpage_of(a.vrange().0))
            .unwrap();
        assert_eq!(view.total(), 0, "hot counters must be reset");
    }

    #[test]
    fn ping_pong_page_gets_frozen() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", (PAGE_SIZE / 8) as usize, 0.0f64);
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        let base = a.vrange().0;
        // Page starts on node 0 (first touch by cpu 0 via the hammer below
        // faults it), but node 3 dominates iteration 1.
        m.touch(0, base, AccessKind::Read);
        hammer(&mut m, 6, base, 2);
        assert_eq!(upm.migrate_memory(&mut m), 1); // 0 -> 3
                                                   // Iteration 2: node 0 dominates (false sharing flip).
        hammer(&mut m, 0, base, 2);
        assert_eq!(upm.migrate_memory(&mut m), 0, "reverse move vetoed");
        assert_eq!(upm.stats().vetoed_moves, 1);
        assert_eq!(upm.stats().frozen_pages, 1);
        // Iteration 3: still node 0 dominant, page frozen, still no move.
        hammer(&mut m, 0, base, 2);
        assert_eq!(upm.migrate_memory(&mut m), 0);
        assert!(!upm.is_active());
    }

    #[test]
    fn min_accesses_suppresses_noise() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", (PAGE_SIZE / 8) as usize, 0.0f64);
        let mut upm = UpmEngine::new(
            &m,
            UpmOptions {
                min_accesses: 50,
                ..Default::default()
            },
        );
        upm.memrefcnt(&a);
        let base = a.vrange().0;
        m.touch(0, base, AccessKind::Read);
        // Only a couple of remote touches: below the floor.
        m.touch(6, base + 128, AccessKind::Read);
        m.touch(6, base + 256, AccessKind::Read);
        assert_eq!(upm.migrate_memory(&mut m), 0);
        assert_eq!(m.node_of_vpage(ccnuma::vpage_of(base)), Some(0));
    }

    #[test]
    fn reactivate_rearms_a_deactivated_engine() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", (PAGE_SIZE / 8) as usize, 0.0f64);
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        hammer(&mut m, 6, a.vrange().0, 2);
        upm.migrate_memory(&mut m); // moves to node 3
        assert_eq!(upm.migrate_memory(&mut m), 0);
        assert!(!upm.is_active());
        // The scheduler moves the consumer to node 0; re-arm and re-learn.
        upm.reactivate(&m);
        assert!(upm.is_active());
        hammer(&mut m, 0, a.vrange().0, 2);
        // Freezing would veto an immediate reversal; this is a later epoch,
        // but the tracker is conservative — disable freezing to observe the
        // re-learning in isolation.
        let mut upm2 = UpmEngine::new(
            &m,
            UpmOptions {
                freeze_ping_pong: false,
                ..Default::default()
            },
        );
        upm2.memrefcnt(&a);
        assert_eq!(upm2.migrate_memory(&mut m), 1);
        assert_eq!(m.node_of_vpage(ccnuma::vpage_of(a.vrange().0)), Some(0));
    }

    #[test]
    fn follow_rebind_replays_placement_under_new_binding() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", 2 * (PAGE_SIZE / 8) as usize, 0.0f64);
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        let base = a.vrange().0;
        // Page 0 tuned to node 3 (cpu 6/7), page 1 to node 0 (cpu 0/1):
        // first touch places each page on its dominant accessor's node.
        hammer(&mut m, 6, base, 2);
        hammer(&mut m, 0, base + PAGE_SIZE, 2);
        assert_eq!(m.node_of_vpage(ccnuma::vpage_of(base)), Some(3));
        assert_eq!(m.node_of_vpage(ccnuma::vpage_of(base + PAGE_SIZE)), Some(0));
        // The OS swaps the node-0 and node-3 pairs: 0,1<->6,7 (2,3<->4,5).
        let old: Vec<usize> = (0..8).collect();
        let new = vec![6, 7, 4, 5, 2, 3, 0, 1];
        let moved = upm.follow_rebind(&mut m, &old, &new);
        assert_eq!(moved, 2, "both tuned pages follow their threads");
        assert_eq!(m.node_of_vpage(ccnuma::vpage_of(base)), Some(0));
        assert_eq!(m.node_of_vpage(ccnuma::vpage_of(base + PAGE_SIZE)), Some(3));
        assert_eq!(upm.stats().rebind_replays, 2);
        assert!(upm.stats().rebind_replay_ns > 0.0);
        assert!(upm.is_active(), "engine is re-armed after the replay");
    }

    #[test]
    fn follow_rebind_falls_back_on_inconsistent_map() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", (PAGE_SIZE / 8) as usize, 0.0f64);
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        hammer(&mut m, 6, a.vrange().0, 2);
        upm.migrate_memory(&mut m);
        upm.migrate_memory(&mut m); // quiescent -> deactivates
        assert!(!upm.is_active());
        // Threads of node 0 (cpus 0,1) land on different nodes: no
        // consistent map, so nothing replays — but the engine re-arms.
        let old: Vec<usize> = (0..8).collect();
        let new = vec![2, 4, 0, 1, 3, 5, 6, 7];
        assert_eq!(upm.follow_rebind(&mut m, &old, &new), 0);
        assert_eq!(upm.stats().rebind_replays, 0);
        assert!(upm.is_active(), "fallback is forget-and-relearn");
    }

    #[test]
    fn follow_rebind_rejects_team_resize() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", (PAGE_SIZE / 8) as usize, 0.0f64);
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        hammer(&mut m, 6, a.vrange().0, 2);
        upm.migrate_memory(&mut m);
        assert_eq!(upm.follow_rebind(&mut m, &[0, 1, 2, 3], &[0, 1]), 0);
        assert!(upm.is_active());
    }

    #[test]
    fn table2_fraction_tracks_invocations() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", 2 * (PAGE_SIZE / 8) as usize, 0.0f64);
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        let base = a.vrange().0;
        m.touch(0, base, AccessKind::Read);
        m.touch(0, base + PAGE_SIZE, AccessKind::Read);
        // Iteration 1: node 3 dominates page 0 only.
        hammer(&mut m, 6, base, 2);
        assert_eq!(upm.migrate_memory(&mut m), 1);
        // Iteration 2: node 2 dominates page 1 (late phase shift).
        hammer(&mut m, 4, base + PAGE_SIZE, 2);
        assert_eq!(upm.migrate_memory(&mut m), 1);
        let frac = upm.stats().first_invocation_fraction();
        assert!((frac - 0.5).abs() < 1e-12, "frac {frac}");
    }
}
