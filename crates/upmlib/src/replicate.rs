//! Read-only page replication — the extension the paper sketches in §1.2:
//! *"Read-only pages can be replicated in multiple nodes. Page migration and
//! replication are the direct analogue to multiprocessor cache coherence
//! with the virtual memory page serving as the coherence unit."*
//!
//! The migration mechanisms leave one class of pages unserved: pages that
//! many nodes *read* heavily but that have no dominant accessor — moving
//! them just moves the hot spot. If such a page is also read-only (its
//! coherence versions did not change over an observation window), a copy on
//! each consuming node removes both the remote latency and the contention.
//! Writes collapse the copies, so correctness never depends on the
//! detection being right — a wrongly replicated page just pays one
//! collapse.
//!
//! Detection is two-phase, like the distribution mechanism: invocation `k`
//! fingerprints each hot page (sum of its lines' coherence versions);
//! invocation `k+1` replicates the pages whose fingerprints are unchanged
//! and whose counters show substantial multi-node read traffic.

use crate::engine::UpmEngine;
use ccnuma::Machine;
use std::collections::HashMap;

/// State of the replication mechanism (owned by [`UpmEngine`]).
#[derive(Debug, Default)]
pub struct ReplicationState {
    /// vpage -> version fingerprint at the previous invocation.
    fingerprints: HashMap<u64, u64>,
    /// Pages already replicated (avoid repeated scans).
    replicated: std::collections::HashSet<u64>,
}

impl UpmEngine {
    /// One invocation of the replication mechanism: fingerprint hot pages,
    /// and replicate those that stayed read-only since the last invocation
    /// onto every node that reads them at least `options.min_accesses`
    /// times per window. Returns the number of replicas created.
    ///
    /// Call it where `migrate_memory` is called (after each iteration).
    pub fn replicate_readonly(&mut self, machine: &mut Machine) -> usize {
        let views = self.hot_page_views(machine);
        let mut created = 0;
        for view in &views {
            let vpage = view.vpage;
            let fingerprint = machine.page_version_sum(vpage);
            let was = self.replication.fingerprints.insert(vpage, fingerprint);
            if was != Some(fingerprint) {
                // First sighting, or written during the window: not (yet)
                // read-only.
                continue;
            }
            if self.replication.replicated.contains(&vpage) {
                continue;
            }
            // Read-only. Count how many nodes consume it substantially.
            let consumers: Vec<usize> = view
                .counts
                .iter()
                .enumerate()
                .filter(|&(n, &c)| n != view.home && c >= self.options.min_accesses as u64)
                .map(|(n, _)| n)
                .collect();
            if consumers.len() < 2 {
                // A single remote consumer is migration's job, not
                // replication's.
                continue;
            }
            let mut any = false;
            for node in consumers {
                if machine.replicate_page(vpage, node).is_ok() {
                    any = true;
                    created += 1;
                }
            }
            if any {
                self.replication.replicated.insert(vpage);
            }
        }
        self.stats.replications += created as u64;
        created
    }
}

#[cfg(test)]
mod tests {
    use crate::{UpmEngine, UpmOptions};
    use ccnuma::{AccessKind, Machine, MachineConfig, SimArray, PAGE_SIZE};

    /// All CPUs read the page; nobody writes after init.
    fn read_from_everywhere(machine: &mut Machine, base: u64) {
        for cpu in 0..8 {
            for line in 0..(PAGE_SIZE / 128) {
                machine.touch(cpu, base + line * 128, AccessKind::Read);
            }
        }
    }

    #[test]
    fn replicates_read_only_multi_consumer_pages() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", (PAGE_SIZE / 8) as usize, 0.0f64);
        let base = a.vrange().0;
        m.touch(0, base, AccessKind::Read); // home node 0
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);

        // Window 1: fingerprint recorded, nothing replicated yet.
        read_from_everywhere(&mut m, base);
        assert_eq!(upm.replicate_readonly(&mut m), 0);
        // Window 2: unchanged fingerprint + multi-node readers => replicas
        // on the three remote consumer nodes.
        read_from_everywhere(&mut m, base);
        let created = upm.replicate_readonly(&mut m);
        assert_eq!(created, 3, "one replica per remote consumer node");
        assert_eq!(m.replica_count(ccnuma::vpage_of(base)), 3);
        // Third call: already replicated, no churn.
        read_from_everywhere(&mut m, base);
        assert_eq!(upm.replicate_readonly(&mut m), 0);
    }

    #[test]
    fn written_pages_are_never_replicated() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", (PAGE_SIZE / 8) as usize, 0.0f64);
        let base = a.vrange().0;
        m.touch(0, base, AccessKind::Read);
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        for _ in 0..3 {
            read_from_everywhere(&mut m, base);
            // One write per window keeps the fingerprint moving.
            m.touch(2, base, AccessKind::Write);
            assert_eq!(upm.replicate_readonly(&mut m), 0);
        }
        assert_eq!(m.replica_count(ccnuma::vpage_of(base)), 0);
    }

    #[test]
    fn single_consumer_pages_are_left_to_migration() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", (PAGE_SIZE / 8) as usize, 0.0f64);
        let base = a.vrange().0;
        m.touch(0, base, AccessKind::Read);
        let mut upm = UpmEngine::new(&m, UpmOptions::default());
        upm.memrefcnt(&a);
        let read_one = |m: &mut Machine| {
            for line in 0..(PAGE_SIZE / 128) {
                m.touch(6, base + line * 128, AccessKind::Read);
            }
        };
        read_one(&mut m);
        upm.replicate_readonly(&mut m);
        read_one(&mut m);
        assert_eq!(upm.replicate_readonly(&mut m), 0);
    }
}
