//! Ping-pong detection and page freezing.
//!
//! Paper §3.2: *"there are some cases in which page-level false sharing
//! might incur some excessive page migrations. This is circumvented by
//! freezing the pages that bounce between two nodes in consecutive
//! iterations."*
//!
//! A page that migrates `A -> B` in one engine invocation and is proposed
//! `B -> A` in the next is bouncing: its reference pattern is not settling
//! because two nodes genuinely share it at page grain. Freezing takes it out
//! of the candidate set permanently.

use ccnuma::NodeId;
use std::collections::{HashMap, HashSet};

/// Record of each page's last migration, plus the frozen set.
#[derive(Debug, Default)]
pub struct FreezeTracker {
    /// vpage -> (from, to, invocation index of the move).
    last_move: HashMap<u64, (NodeId, NodeId, u64)>,
    frozen: HashSet<u64>,
}

impl FreezeTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a page is frozen.
    pub fn is_frozen(&self, vpage: u64) -> bool {
        self.frozen.contains(&vpage)
    }

    /// Number of frozen pages.
    pub fn frozen_count(&self) -> usize {
        self.frozen.len()
    }

    /// The frozen pages, sorted — the ground truth the static analyzer's
    /// ping-pong predictions are differentially tested against.
    pub fn frozen_pages(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.frozen.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Ask whether moving `vpage` from `from` to `to` during `invocation`
    /// is allowed; if the move reverses the previous invocation's move, the
    /// page is frozen instead and `false` is returned. An allowed move is
    /// recorded.
    pub fn approve(&mut self, vpage: u64, from: NodeId, to: NodeId, invocation: u64) -> bool {
        if self.frozen.contains(&vpage) {
            return false;
        }
        if let Some(&(prev_from, prev_to, prev_inv)) = self.last_move.get(&vpage) {
            let reverses = prev_from == to && prev_to == from;
            let consecutive = invocation == prev_inv + 1;
            if reverses && consecutive {
                self.frozen.insert(vpage);
                self.last_move.remove(&vpage);
                return false;
            }
        }
        self.last_move.insert(vpage, (from, to, invocation));
        true
    }

    /// Forget all freeze state: every frozen page thaws and the move
    /// history clears. Called when the engine re-arms after a scheduler
    /// rebind — the threads moved, so a page that ping-ponged under the
    /// old binding has a legitimately different dominant node now, and the
    /// old oscillation history is evidence about a placement that no
    /// longer exists.
    pub fn thaw(&mut self) {
        self.frozen.clear();
        self.last_move.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_move_is_approved() {
        let mut f = FreezeTracker::new();
        assert!(f.approve(1, 0, 3, 1));
        assert!(!f.is_frozen(1));
    }

    #[test]
    fn immediate_bounce_freezes() {
        let mut f = FreezeTracker::new();
        assert!(f.approve(1, 0, 3, 1));
        assert!(!f.approve(1, 3, 0, 2), "reverse move must be refused");
        assert!(f.is_frozen(1));
        assert_eq!(f.frozen_count(), 1);
        // Frozen forever.
        assert!(!f.approve(1, 0, 3, 5));
    }

    #[test]
    fn non_consecutive_reverse_is_allowed() {
        let mut f = FreezeTracker::new();
        assert!(f.approve(1, 0, 3, 1));
        // The reference pattern changed much later: not false sharing.
        assert!(f.approve(1, 3, 0, 7));
        assert!(!f.is_frozen(1));
    }

    #[test]
    fn forward_chain_is_allowed() {
        let mut f = FreezeTracker::new();
        assert!(f.approve(1, 0, 2, 1));
        assert!(f.approve(1, 2, 3, 2)); // onward, not a bounce
        assert!(!f.is_frozen(1));
    }

    #[test]
    fn pages_are_independent() {
        let mut f = FreezeTracker::new();
        assert!(f.approve(1, 0, 3, 1));
        assert!(f.approve(2, 3, 0, 2)); // different page, fine
        assert!(!f.is_frozen(2));
    }
}
