//! Region-to-phase attribution: turning numbered machine regions back into
//! the benchmark's loop names.
//!
//! The machine's region protocol numbers parallel and serial regions in
//! execution order, and the `nas` kernel models name every loop of the
//! cold-start and of one timed iteration in program order. Those two
//! sequences are reconciled by **end-alignment**: the regions executed
//! before the first `IterationBoundary` are, from the back, exactly one
//! timed iteration preceded by the cold-start loops — whatever ran before
//! that (constructor first-touch sweeps the model does not name) is
//! `[setup]`, and whatever runs after the last timed iteration
//! (verification) is `[post]`. The alignment never guesses: if the counts
//! cannot be reconciled the map degrades to numbered region labels and
//! says so in a warning, rather than mislabelling loops.
//!
//! Engine work (page scans, migrations, vetoes, freezes, replay batches)
//! happens *between* regions; the attributor buffers those events and
//! flushes them to a pseudo-phase named for the engine that claimed them —
//! the next `KernelScan`, `UpmInvoked`, `ReplayBatch` or `Undo` marker.

use crate::context::ProfileContext;
use obs::{Event, EventKind};
use std::collections::HashMap;

/// What part of the run a phase row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Constructor-time regions before the modeled cold-start loops.
    Setup,
    /// A cold-start (discarded first iteration) loop.
    Cold,
    /// A timed-iteration loop, aggregated across all iterations.
    Iteration,
    /// A migration-engine pseudo-phase (work done between regions).
    Engine,
    /// Regions after the last timed iteration (verification).
    Post,
    /// Numbered fallback when region and model counts cannot be aligned.
    Unmapped,
}

impl PhaseKind {
    /// Presentation order of the profile table.
    fn rank(self) -> u8 {
        match self {
            PhaseKind::Setup => 0,
            PhaseKind::Cold => 1,
            PhaseKind::Iteration => 2,
            PhaseKind::Engine => 3,
            PhaseKind::Post => 4,
            PhaseKind::Unmapped => 5,
        }
    }

    /// Short label for the report's `Kind` column.
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::Setup => "setup",
            PhaseKind::Cold => "cold",
            PhaseKind::Iteration => "iter",
            PhaseKind::Engine => "engine",
            PhaseKind::Post => "post",
            PhaseKind::Unmapped => "?",
        }
    }
}

/// One phase of the profile: a named loop (or pseudo-phase) with every
/// counter the trace attributes to it, aggregated over all executions.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// Phase label (`"compute_rhs/x_flux"`, `"[engine] upmlib"`, ...).
    pub label: String,
    pub kind: PhaseKind,
    /// Region executions (or engine invocations) folded into this row.
    pub executions: u64,
    /// Corrected wall time summed over executions (from `RegionProfile`).
    pub wall_ns: f64,
    /// Local memory accesses summed over executions.
    pub local: u64,
    /// Remote memory accesses summed over executions.
    pub remote: u64,
    /// Memory stall time summed over executions.
    pub stall_ns: f64,
    /// Pages first-touched (mapped) while this phase was executing.
    pub pages_mapped: u64,
    /// Page migrations attributed to this phase.
    pub migrations: u64,
    /// Competitive moves vetoed (frozen/cooling pages) in this phase.
    pub vetoes: u64,
    /// Pages frozen by the ping-pong tracker in this phase.
    pub freezes: u64,
    /// Pages moved by record-replay lists in this phase.
    pub replay_moves: u64,
}

impl PhaseRow {
    fn new(label: String, kind: PhaseKind) -> Self {
        Self {
            label,
            kind,
            executions: 0,
            wall_ns: 0.0,
            local: 0,
            remote: 0,
            stall_ns: 0.0,
            pages_mapped: 0,
            migrations: 0,
            vetoes: 0,
            freezes: 0,
            replay_moves: 0,
        }
    }

    /// Fraction of this phase's memory accesses that were remote.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local + self.remote;
        if total == 0 {
            0.0
        } else {
            self.remote as f64 / total as f64
        }
    }
}

/// Per-iteration aggregates copied out of the `IterationBoundary` events.
#[derive(Debug, Clone, PartialEq)]
pub struct IterRow {
    pub iter: usize,
    pub migrations: u64,
    pub remote_fraction: f64,
    pub stall_ns: f64,
}

/// The end-aligned region-number-to-label map (see the module docs).
pub(crate) struct RegionMap {
    setup: u64,
    cold: Vec<String>,
    iteration: Vec<String>,
    /// Total regions covered by timed iterations (`iters * iteration.len()`).
    timed: u64,
    fallback: bool,
}

impl RegionMap {
    pub(crate) fn build(
        events: &[Event],
        ctx: &ProfileContext,
        warnings: &mut Vec<String>,
    ) -> Self {
        let mut total = 0u64;
        let mut pre = None;
        let mut iters = 0u64;
        for event in events {
            match event.kind {
                EventKind::RegionBegin { .. } => total += 1,
                EventKind::IterationBoundary { .. } => {
                    pre.get_or_insert(total);
                    iters += 1;
                }
                _ => {}
            }
        }
        let cold_len = ctx.cold_loops.len() as u64;
        let iter_len = ctx.iteration_loops.len() as u64;
        // The first boundary fires at the end of timed iteration 0, so the
        // regions before it are setup + cold-start + one timed iteration.
        let lead = cold_len + if iters > 0 { iter_len } else { 0 };
        let timed = iters * iter_len;
        let pre = pre.unwrap_or(total);
        let fallback = Self {
            setup: 0,
            cold: Vec::new(),
            iteration: Vec::new(),
            timed: 0,
            fallback: true,
        };
        let Some(setup) = pre.checked_sub(lead) else {
            warnings.push(format!(
                "region/phase mismatch: {pre} regions precede the first iteration \
                 boundary but the model names {lead}; using numbered regions"
            ));
            return fallback;
        };
        if setup + cold_len + timed > total {
            warnings.push(format!(
                "region/phase mismatch: {total} regions cannot hold {setup} setup \
                 + {cold_len} cold + {iters}x{iter_len} iteration loops; \
                 using numbered regions"
            ));
            return fallback;
        }
        Self {
            setup,
            cold: ctx.cold_loops.clone(),
            iteration: ctx.iteration_loops.clone(),
            timed,
            fallback: false,
        }
    }

    /// Label and kind of region number `region`.
    pub(crate) fn label(&self, region: u64) -> (String, PhaseKind) {
        if self.fallback {
            return (format!("region {region:03}"), PhaseKind::Unmapped);
        }
        let Some(after_setup) = region.checked_sub(self.setup) else {
            return ("[setup]".to_string(), PhaseKind::Setup);
        };
        if let Some(name) = self.cold.get(after_setup as usize) {
            return (format!("cold {name}"), PhaseKind::Cold);
        }
        let after_cold = after_setup - self.cold.len() as u64;
        if after_cold < self.timed {
            let name = &self.iteration[(after_cold % self.iteration.len() as u64) as usize];
            (name.clone(), PhaseKind::Iteration)
        } else {
            ("[post]".to_string(), PhaseKind::Post)
        }
    }
}

/// Engine events seen since the last flush point, awaiting a claim marker.
#[derive(Default)]
struct Pending {
    migrations: u64,
    vetoes: u64,
    freezes: u64,
}

impl Pending {
    fn take(&mut self) -> Pending {
        std::mem::take(self)
    }

    fn is_empty(&self) -> bool {
        self.migrations == 0 && self.vetoes == 0 && self.freezes == 0
    }
}

/// Ordered, label-keyed accumulation of phase rows.
struct Rows {
    rows: Vec<PhaseRow>,
    index: HashMap<String, usize>,
}

impl Rows {
    fn new() -> Self {
        Self {
            rows: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn row(&mut self, label: &str, kind: PhaseKind) -> &mut PhaseRow {
        let idx = *self.index.entry(label.to_string()).or_insert_with(|| {
            self.rows.push(PhaseRow::new(label.to_string(), kind));
            self.rows.len() - 1
        });
        &mut self.rows[idx]
    }

    fn absorb(&mut self, label: &str, kind: PhaseKind, pending: Pending) -> &mut PhaseRow {
        let row = self.row(label, kind);
        row.migrations += pending.migrations;
        row.vetoes += pending.vetoes;
        row.freezes += pending.freezes;
        row
    }

    /// Rows sorted by kind rank, then first-encounter (program) order.
    fn finish(self) -> Vec<PhaseRow> {
        let mut indexed: Vec<(usize, PhaseRow)> = self.rows.into_iter().enumerate().collect();
        indexed.sort_by(|(ia, a), (ib, b)| a.kind.rank().cmp(&b.kind.rank()).then(ia.cmp(ib)));
        indexed.into_iter().map(|(_, row)| row).collect()
    }
}

/// Walk the event stream once, attributing every counter to a phase row
/// and collecting the per-iteration table.
pub(crate) fn attribute(
    events: &[Event],
    ctx: &ProfileContext,
    warnings: &mut Vec<String>,
) -> (Vec<PhaseRow>, Vec<IterRow>) {
    let map = RegionMap::build(events, ctx, warnings);
    let mut rows = Rows::new();
    let mut iters = Vec::new();
    let mut open: Option<u64> = None;
    let mut pending = Pending::default();
    for event in events {
        match event.kind {
            EventKind::RegionBegin { region } => open = Some(region),
            EventKind::RegionEnd { .. } => open = None,
            EventKind::RegionProfile {
                region,
                wall_ns,
                local,
                remote,
                stall_ns,
            } => {
                let (label, kind) = map.label(region);
                let row = rows.row(&label, kind);
                row.executions += 1;
                row.wall_ns += wall_ns;
                row.local += local;
                row.remote += remote;
                row.stall_ns += stall_ns;
            }
            EventKind::PageMapped { .. } => match open {
                Some(region) => {
                    let (label, kind) = map.label(region);
                    rows.row(&label, kind).pages_mapped += 1;
                }
                // Outside every region only construction (eager placement,
                // initial-value sweeps) maps pages.
                None => rows.row("[setup]", PhaseKind::Setup).pages_mapped += 1,
            },
            EventKind::PageMigrated { .. } => match open {
                Some(region) => {
                    let (label, kind) = map.label(region);
                    rows.row(&label, kind).migrations += 1;
                }
                None => pending.migrations += 1,
            },
            EventKind::MoveVetoed { .. } => match open {
                Some(region) => {
                    let (label, kind) = map.label(region);
                    rows.row(&label, kind).vetoes += 1;
                }
                None => pending.vetoes += 1,
            },
            EventKind::PageFrozen { .. } => match open {
                Some(region) => {
                    let (label, kind) = map.label(region);
                    rows.row(&label, kind).freezes += 1;
                }
                None => pending.freezes += 1,
            },
            EventKind::KernelScan { .. } => {
                rows.absorb("[engine] kernel daemon", PhaseKind::Engine, pending.take())
                    .executions += 1;
            }
            EventKind::UpmInvoked { .. } => {
                rows.absorb("[engine] upmlib", PhaseKind::Engine, pending.take())
                    .executions += 1;
            }
            EventKind::ReplayBatch { moved, .. } | EventKind::Undo { moved, .. } => {
                let row = rows.absorb("[engine] record-replay", PhaseKind::Engine, pending.take());
                row.executions += 1;
                row.replay_moves += moved as u64;
            }
            EventKind::IterationBoundary {
                iter,
                migrations,
                remote_fraction,
                stall_ns,
            } => iters.push(IterRow {
                iter,
                migrations,
                remote_fraction,
                stall_ns,
            }),
            _ => {}
        }
    }
    if !pending.is_empty() {
        rows.absorb("[engine] other", PhaseKind::Engine, pending.take());
    }
    (rows.finish(), iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ProfileContext;

    fn ctx(cold: &[&str], iteration: &[&str]) -> ProfileContext {
        ProfileContext::new(
            "CG",
            "tiny",
            4,
            4096,
            cold.iter().map(|s| s.to_string()).collect(),
            iteration.iter().map(|s| s.to_string()).collect(),
            vec![],
        )
    }

    fn ev(kind: EventKind) -> Event {
        Event { t_ns: 0.0, kind }
    }

    fn boundary(iter: usize) -> Event {
        ev(EventKind::IterationBoundary {
            iter,
            migrations: 0,
            remote_fraction: 0.0,
            stall_ns: 0.0,
        })
    }

    #[test]
    fn end_alignment_names_setup_cold_iteration_and_post() {
        // Regions: 0 setup, 1 cold, {2,3} iter0, {4,5} iter1, 6 post.
        let mut events = Vec::new();
        for region in 0..7u64 {
            events.push(ev(EventKind::RegionBegin { region }));
            events.push(ev(EventKind::RegionEnd { region }));
            if region == 3 {
                events.push(boundary(0));
            }
            if region == 5 {
                events.push(boundary(1));
            }
        }
        let ctx = ctx(&["init/warm"], &["solve/x", "solve/y"]);
        let mut warnings = Vec::new();
        let map = RegionMap::build(&events, &ctx, &mut warnings);
        assert!(warnings.is_empty(), "{warnings:?}");
        let labels: Vec<String> = (0..7).map(|r| map.label(r).0).collect();
        assert_eq!(
            labels,
            [
                "[setup]",
                "cold init/warm",
                "solve/x",
                "solve/y",
                "solve/x",
                "solve/y",
                "[post]"
            ]
        );
        assert_eq!(map.label(0).1, PhaseKind::Setup);
        assert_eq!(map.label(1).1, PhaseKind::Cold);
        assert_eq!(map.label(4).1, PhaseKind::Iteration);
        assert_eq!(map.label(6).1, PhaseKind::Post);
    }

    #[test]
    fn mismatch_degrades_to_numbered_regions_with_warning() {
        // Only one region before the first boundary, but the model names 3.
        let events = vec![
            ev(EventKind::RegionBegin { region: 0 }),
            ev(EventKind::RegionEnd { region: 0 }),
            boundary(0),
        ];
        let ctx = ctx(&["init/warm"], &["solve/x", "solve/y"]);
        let mut warnings = Vec::new();
        let map = RegionMap::build(&events, &ctx, &mut warnings);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("mismatch"), "{}", warnings[0]);
        assert_eq!(
            map.label(0),
            ("region 000".to_string(), PhaseKind::Unmapped)
        );
    }

    #[test]
    fn no_boundaries_means_cold_only() {
        let events = vec![
            ev(EventKind::RegionBegin { region: 0 }),
            ev(EventKind::RegionEnd { region: 0 }),
            ev(EventKind::RegionBegin { region: 1 }),
            ev(EventKind::RegionEnd { region: 1 }),
        ];
        let ctx = ctx(&["init/warm"], &["solve/x", "solve/y"]);
        let mut warnings = Vec::new();
        let map = RegionMap::build(&events, &ctx, &mut warnings);
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(map.label(0).0, "[setup]");
        assert_eq!(map.label(1).0, "cold init/warm");
    }

    #[test]
    fn engine_events_flush_to_their_claiming_marker() {
        let events = vec![
            ev(EventKind::PageMigrated {
                vpage: 1,
                from: 0,
                to: 1,
            }),
            ev(EventKind::MoveVetoed {
                vpage: 2,
                from: 0,
                to: 1,
            }),
            ev(EventKind::UpmInvoked {
                invocation: 0,
                moved: 1,
            }),
            ev(EventKind::PageMigrated {
                vpage: 3,
                from: 1,
                to: 0,
            }),
            ev(EventKind::ReplayBatch { phase: 0, moved: 1 }),
            ev(EventKind::PageFrozen { vpage: 9 }),
        ];
        let ctx = ctx(&[], &[]);
        let mut warnings = Vec::new();
        let (rows, _) = attribute(&events, &ctx, &mut warnings);
        let find = |label: &str| rows.iter().find(|r| r.label == label).unwrap();
        let upm = find("[engine] upmlib");
        assert_eq!((upm.migrations, upm.vetoes, upm.executions), (1, 1, 1));
        let replay = find("[engine] record-replay");
        assert_eq!((replay.migrations, replay.replay_moves), (1, 1));
        // The trailing freeze had no claiming marker.
        assert_eq!(find("[engine] other").freezes, 1);
    }
}
