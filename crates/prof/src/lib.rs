//! # prof — trace-driven NUMA profiler
//!
//! Turns an `obs` event stream (live tracer ring or an imported
//! `trace.jsonl`) into the profile a performance engineer would actually
//! read:
//!
//! * **Per-phase attribution** ([`attrib`]) — every machine region is
//!   mapped back to its benchmark loop name via the `nas` kernel models'
//!   program-order loop lists, so remote fractions, stalls, first-touch
//!   mappings and migration work are reported per `phase/loop`, with the
//!   engines' between-region work split into `[engine]` pseudo-phases.
//! * **Page heatmaps** ([`heatmap`]) — node x page-bin matrices per shared
//!   array: observed reference counts, migration landings and final page
//!   placement.
//! * **Convergence diagnostics** ([`converge`]) — the engine's
//!   migrations-per-invocation decay curve, its self-deactivation point,
//!   and the ping-pong/veto/freeze pathologies that delay it.
//! * **Counter tracks** ([`Profile::counter_tracks`]) — Perfetto `"C"`
//!   samples to enrich the Chrome trace export.
//!
//! The analysis is a pure function of `(events, context)`: no simulator
//! types, no clock access, no I/O. That keeps the profiler deterministic
//! (byte-identical output however the run was parallelised) and lets it
//! run equally over a live ring or a trace file written weeks ago.

pub mod attrib;
pub mod context;
pub mod converge;
pub mod heatmap;
pub mod profile;

pub use attrib::{IterRow, PhaseKind, PhaseRow};
pub use context::{ArraySpan, ProfileContext, DEFAULT_HEATMAP_BINS};
pub use converge::Convergence;
pub use heatmap::ArrayHeatmap;
pub use profile::Profile;
