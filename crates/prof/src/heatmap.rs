//! Node x page-bin heatmaps per shared array.
//!
//! Each array's virtual pages are folded into at most
//! [`crate::context::ProfileContext::heatmap_bins`] equal-width bins, and
//! three matrices are accumulated per array over the whole trace:
//!
//! * **accesses** — reference-counter readings from `PageCounterSample`
//!   events. UPMlib's competitive criterion exposes only a page's home
//!   count and its dominant remote count, so the matrix shows where the
//!   traffic the engine acted on came from, not every node's share; counts
//!   are per-invocation windows summed over the run.
//! * **migrations in** — `PageMigrated` events landing in the array,
//!   binned by destination node.
//! * **placement** — where the array's pages ended up: the final home of
//!   every mapped page, reconstructed from `PageMapped`/`PageMigrated`.

use crate::context::ProfileContext;
use obs::{Event, EventKind};
use std::collections::HashMap;

/// One array's accumulated heatmap matrices (all `[node][bin]`).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayHeatmap {
    pub name: String,
    /// Virtual pages the array spans.
    pub pages: u64,
    /// Bins the pages were folded into (`<= pages`).
    pub bins: usize,
    /// Observed reference counts (home + dominant-remote components).
    pub accesses: Vec<Vec<u64>>,
    /// Pages migrated into each node, by destination bin.
    pub migrations_in: Vec<Vec<u64>>,
    /// Final page homes (each mapped page counted once).
    pub placement: Vec<Vec<u64>>,
}

impl ArrayHeatmap {
    fn new(name: &str, pages: u64, bins: usize, nodes: usize) -> Self {
        Self {
            name: name.to_string(),
            pages,
            bins,
            accesses: vec![vec![0; bins]; nodes],
            migrations_in: vec![vec![0; bins]; nodes],
            placement: vec![vec![0; bins]; nodes],
        }
    }

    /// Which bin page `page_index` (relative to the array start) falls in.
    pub fn bin_of(&self, page_index: u64) -> usize {
        debug_assert!(page_index < self.pages);
        (page_index * self.bins as u64 / self.pages) as usize
    }

    /// Total entries of one matrix (convenience for reports and tests).
    pub fn total(matrix: &[Vec<u64>]) -> u64 {
        matrix.iter().flatten().sum()
    }
}

/// Accumulate every array's heatmap over the trace.
pub(crate) fn build(events: &[Event], ctx: &ProfileContext) -> Vec<ArrayHeatmap> {
    let mut maps: Vec<ArrayHeatmap> = ctx
        .arrays
        .iter()
        .map(|span| {
            let pages = span.page_count(ctx.page_size);
            let bins = ctx.heatmap_bins.min(pages as usize);
            ArrayHeatmap::new(&span.name, pages, bins, ctx.nodes)
        })
        .collect();
    // Current home of every mapped page, kept live across the walk.
    let mut home: HashMap<u64, usize> = HashMap::new();
    for event in events {
        match event.kind {
            EventKind::PageMapped { vpage, node } => {
                home.insert(vpage, node);
            }
            EventKind::PageMigrated { vpage, to, .. } => {
                home.insert(vpage, to);
                if let Some((a, page)) = ctx.array_of_page(vpage) {
                    if to < ctx.nodes {
                        let bin = maps[a].bin_of(page);
                        maps[a].migrations_in[to][bin] += 1;
                    }
                }
            }
            EventKind::PageCounterSample {
                vpage,
                home: home_node,
                local,
                rmax,
                rnode,
            } => {
                // The sample names the page's current home, so it also
                // teaches the placement tracker about pages whose eager
                // mapping predates the trace sink (samples precede the
                // same invocation's migrations in the stream).
                home.insert(vpage, home_node);
                if let Some((a, page)) = ctx.array_of_page(vpage) {
                    let bin = maps[a].bin_of(page);
                    if home_node < ctx.nodes {
                        maps[a].accesses[home_node][bin] += local;
                    }
                    if rnode < ctx.nodes {
                        maps[a].accesses[rnode][bin] += rmax;
                    }
                }
            }
            _ => {}
        }
    }
    for (a, span) in ctx.arrays.iter().enumerate() {
        let first = span.first_page(ctx.page_size);
        for page in 0..maps[a].pages {
            if let Some(&node) = home.get(&(first + page)) {
                if node < ctx.nodes {
                    let bin = maps[a].bin_of(page);
                    maps[a].placement[node][bin] += 1;
                }
            }
        }
    }
    maps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ArraySpan;

    fn ev(kind: EventKind) -> Event {
        Event { t_ns: 0.0, kind }
    }

    fn ctx_with(bins: usize) -> ProfileContext {
        let mut ctx = ProfileContext::new(
            "CG",
            "tiny",
            2,
            4096,
            vec![],
            vec![],
            vec![ArraySpan::new("a", 0, 4096 * 8)],
        );
        ctx.heatmap_bins = bins;
        ctx
    }

    #[test]
    fn bins_clamp_to_page_count_and_partition_evenly() {
        let maps = build(&[], &ctx_with(16));
        assert_eq!(maps[0].bins, 8, "8-page array cannot have 16 bins");
        let map = &maps[0];
        for page in 0..8 {
            assert_eq!(map.bin_of(page), page as usize);
        }
        let maps = build(&[], &ctx_with(4));
        assert_eq!(maps[0].bin_of(0), 0);
        assert_eq!(maps[0].bin_of(1), 0);
        assert_eq!(maps[0].bin_of(7), 3);
    }

    #[test]
    fn placement_tracks_mapping_then_migration() {
        let events = vec![
            ev(EventKind::PageMapped { vpage: 0, node: 0 }),
            ev(EventKind::PageMapped { vpage: 1, node: 1 }),
            ev(EventKind::PageMigrated {
                vpage: 0,
                from: 0,
                to: 1,
            }),
            // A page outside the array must not be attributed to it.
            ev(EventKind::PageMapped {
                vpage: 100,
                node: 0,
            }),
        ];
        let maps = build(&events, &ctx_with(8));
        let map = &maps[0];
        // Page 0 ended on node 1, page 1 on node 1, pages 2..8 never mapped.
        assert_eq!(ArrayHeatmap::total(&map.placement), 2);
        assert_eq!(map.placement[1][0], 1);
        assert_eq!(map.placement[1][1], 1);
        assert_eq!(map.placement[0].iter().sum::<u64>(), 0);
        assert_eq!(ArrayHeatmap::total(&map.migrations_in), 1);
        assert_eq!(map.migrations_in[1][0], 1);
    }

    #[test]
    fn counter_samples_accumulate_home_and_dominant_remote() {
        let events = vec![
            ev(EventKind::PageCounterSample {
                vpage: 4,
                home: 0,
                local: 10,
                rmax: 25,
                rnode: 1,
            }),
            ev(EventKind::PageCounterSample {
                vpage: 4,
                home: 0,
                local: 3,
                rmax: 0,
                rnode: 1,
            }),
        ];
        let maps = build(&events, &ctx_with(8));
        let map = &maps[0];
        assert_eq!(map.accesses[0][4], 13);
        assert_eq!(map.accesses[1][4], 25);
    }
}
