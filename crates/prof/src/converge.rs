//! Engine convergence diagnostics.
//!
//! The paper's central mechanism is *self-deactivating* migration: the
//! engine's per-invocation move count should decay to zero within a few
//! iterations, after which it turns itself off. This module extracts that
//! story from the trace: the decay curve (`UpmInvoked`), the deactivation
//! point (`EngineDeactivated`), and the pathologies that delay it — pages
//! frozen for ping-ponging, vetoed moves, and pages that returned to a
//! node they had already lived on.

use obs::{Event, EventKind};
use std::collections::{HashMap, HashSet};

/// Convergence facts extracted from one trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Convergence {
    /// `(invocation, pages moved)` per engine invocation, in order.
    pub decay: Vec<(usize, usize)>,
    /// The invocation at which the engine turned itself off, if it did.
    pub deactivated_at: Option<usize>,
    /// The timed iteration (0-based) during which deactivation happened.
    pub deactivation_iteration: Option<usize>,
    /// Pages the ping-pong tracker froze, in freeze order (deduplicated).
    pub frozen_pages: Vec<u64>,
    /// `(vpage, vetoed moves)` sorted by count descending, then page.
    pub vetoes: Vec<(u64, u64)>,
    /// Pages that migrated back to a node they had previously lived on.
    pub ping_pong_pages: usize,
    /// All page migrations in the trace (any engine).
    pub total_migrations: u64,
}

/// Walk the trace once and collect the convergence story.
pub(crate) fn build(events: &[Event]) -> Convergence {
    let mut out = Convergence::default();
    let mut frozen_seen = HashSet::new();
    let mut veto_counts: HashMap<u64, u64> = HashMap::new();
    let mut visited: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut ping_pong: HashSet<u64> = HashSet::new();
    let mut boundaries = 0usize;
    for event in events {
        match event.kind {
            EventKind::UpmInvoked { invocation, moved } => {
                out.decay.push((invocation, moved));
            }
            EventKind::EngineDeactivated { invocation } => {
                out.deactivated_at = Some(invocation);
                out.deactivation_iteration = Some(boundaries);
            }
            EventKind::IterationBoundary { .. } => boundaries += 1,
            EventKind::PageFrozen { vpage } if frozen_seen.insert(vpage) => {
                out.frozen_pages.push(vpage);
            }
            EventKind::MoveVetoed { vpage, .. } => {
                *veto_counts.entry(vpage).or_insert(0) += 1;
            }
            EventKind::PageMigrated { vpage, from, to } => {
                out.total_migrations += 1;
                let homes = visited.entry(vpage).or_default();
                if homes.is_empty() {
                    homes.push(from);
                }
                if homes.contains(&to) {
                    ping_pong.insert(vpage);
                }
                homes.push(to);
            }
            _ => {}
        }
    }
    out.ping_pong_pages = ping_pong.len();
    out.vetoes = veto_counts.into_iter().collect();
    out.vetoes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind) -> Event {
        Event { t_ns: 0.0, kind }
    }

    #[test]
    fn decay_and_deactivation_are_extracted() {
        let events = vec![
            ev(EventKind::UpmInvoked {
                invocation: 0,
                moved: 12,
            }),
            ev(EventKind::IterationBoundary {
                iter: 0,
                migrations: 12,
                remote_fraction: 0.4,
                stall_ns: 0.0,
            }),
            ev(EventKind::UpmInvoked {
                invocation: 1,
                moved: 0,
            }),
            ev(EventKind::EngineDeactivated { invocation: 1 }),
            ev(EventKind::IterationBoundary {
                iter: 1,
                migrations: 0,
                remote_fraction: 0.1,
                stall_ns: 0.0,
            }),
        ];
        let c = build(&events);
        assert_eq!(c.decay, vec![(0, 12), (1, 0)]);
        assert_eq!(c.deactivated_at, Some(1));
        assert_eq!(c.deactivation_iteration, Some(1));
    }

    #[test]
    fn ping_pong_census_counts_pages_returning_home() {
        let migrate = |vpage, from, to| ev(EventKind::PageMigrated { vpage, from, to });
        let events = vec![
            migrate(1, 0, 1), // 1: 0 -> 1
            migrate(1, 1, 0), // 1: back to 0 — ping-pong
            migrate(2, 0, 1), // 2: 0 -> 1
            migrate(2, 1, 2), // 2: 1 -> 2 — forward progress, no ping-pong
        ];
        let c = build(&events);
        assert_eq!(c.total_migrations, 4);
        assert_eq!(c.ping_pong_pages, 1);
    }

    #[test]
    fn vetoes_sort_by_count_then_page_and_freezes_dedup() {
        let veto = |vpage| {
            ev(EventKind::MoveVetoed {
                vpage,
                from: 0,
                to: 1,
            })
        };
        let events = vec![
            veto(7),
            veto(3),
            veto(3),
            veto(9),
            ev(EventKind::PageFrozen { vpage: 3 }),
            ev(EventKind::PageFrozen { vpage: 3 }),
        ];
        let c = build(&events);
        assert_eq!(c.vetoes, vec![(3, 2), (7, 1), (9, 1)]);
        assert_eq!(c.frozen_pages, vec![3]);
    }
}
