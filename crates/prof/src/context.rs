//! Inputs the profiler needs beyond the event stream itself.
//!
//! A trace is just a sequence of timestamped events; to turn it into a
//! readable profile the analyzer also needs to know what program produced
//! it. A [`ProfileContext`] carries exactly that static knowledge: the
//! machine shape (node count, page size), the benchmark's loop labels in
//! program order (from the `nas` kernel models), and the virtual spans of
//! the shared arrays (for heatmap and migration attribution). Everything
//! here is plain data, so the crate stays free of simulator dependencies —
//! the `xp` driver assembles a context from a `KernelModel`, and tests
//! build one by hand.

/// Default number of page bins per array heatmap (arrays smaller than
/// this get one bin per page).
pub const DEFAULT_HEATMAP_BINS: usize = 16;

/// The simulated virtual span of one shared array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArraySpan {
    /// The array's registration name (e.g. `"colidx"`).
    pub name: String,
    /// First simulated virtual address.
    pub base: u64,
    /// Span length in bytes.
    pub len: u64,
}

impl ArraySpan {
    /// A span from its name and virtual range.
    pub fn new(name: &str, base: u64, len: u64) -> Self {
        Self {
            name: name.to_string(),
            base,
            len,
        }
    }

    /// The first virtual page the span touches.
    pub fn first_page(&self, page_size: u64) -> u64 {
        self.base / page_size
    }

    /// How many virtual pages the span touches (zero for empty spans).
    pub fn page_count(&self, page_size: u64) -> u64 {
        if self.len == 0 {
            0
        } else {
            (self.base + self.len - 1) / page_size - self.first_page(page_size) + 1
        }
    }
}

/// Everything the analyzer knows about the run besides its events.
#[derive(Debug, Clone)]
pub struct ProfileContext {
    /// Benchmark label (e.g. `"CG"`), used only for report headings.
    pub bench: String,
    /// Problem-scale label (e.g. `"tiny"`).
    pub scale: String,
    /// Number of NUMA nodes in the simulated machine.
    pub nodes: usize,
    /// Simulated page size in bytes.
    pub page_size: u64,
    /// `phase/loop` labels of the cold-start regions, in program order.
    pub cold_loops: Vec<String>,
    /// `phase/loop` labels of one timed iteration, in program order.
    pub iteration_loops: Vec<String>,
    /// Virtual spans of the shared arrays, in registration order.
    pub arrays: Vec<ArraySpan>,
    /// Page bins per array heatmap (clamped to the array's page count).
    pub heatmap_bins: usize,
}

impl ProfileContext {
    /// A context with the default heatmap resolution.
    pub fn new(
        bench: &str,
        scale: &str,
        nodes: usize,
        page_size: u64,
        cold_loops: Vec<String>,
        iteration_loops: Vec<String>,
        arrays: Vec<ArraySpan>,
    ) -> Self {
        Self {
            bench: bench.to_string(),
            scale: scale.to_string(),
            nodes,
            page_size,
            cold_loops,
            iteration_loops,
            arrays,
            heatmap_bins: DEFAULT_HEATMAP_BINS,
        }
    }

    /// Which array a virtual page belongs to: `(array index, page index
    /// within the array)`, or `None` for pages outside every span (stack,
    /// private data). First matching span wins, mirroring the spans'
    /// registration order.
    pub fn array_of_page(&self, vpage: u64) -> Option<(usize, u64)> {
        self.arrays.iter().enumerate().find_map(|(i, span)| {
            let first = span.first_page(self.page_size);
            let count = span.page_count(self.page_size);
            (vpage >= first && vpage < first + count).then(|| (i, vpage - first))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_page_arithmetic() {
        let span = ArraySpan::new("a", 4096 * 3 + 100, 4096 * 2);
        assert_eq!(span.first_page(4096), 3);
        // Bytes [3*4096+100, 5*4096+100) straddle pages 3, 4 and 5.
        assert_eq!(span.page_count(4096), 3);
        assert_eq!(ArraySpan::new("b", 0, 0).page_count(4096), 0);
        assert_eq!(ArraySpan::new("c", 4096, 1).page_count(4096), 1);
    }

    #[test]
    fn page_to_array_lookup() {
        let ctx = ProfileContext::new(
            "CG",
            "tiny",
            4,
            4096,
            vec![],
            vec![],
            vec![
                ArraySpan::new("a", 0, 4096 * 2),
                ArraySpan::new("b", 4096 * 4, 4096),
            ],
        );
        assert_eq!(ctx.array_of_page(0), Some((0, 0)));
        assert_eq!(ctx.array_of_page(1), Some((0, 1)));
        assert_eq!(ctx.array_of_page(2), None, "gap between arrays");
        assert_eq!(ctx.array_of_page(4), Some((1, 0)));
        assert_eq!(ctx.array_of_page(5), None);
    }
}
