//! The assembled profile: one `analyze` pass over a trace produces the
//! phase table, the per-iteration table, the array heatmaps, the
//! convergence diagnostics and a set of Perfetto counter tracks, plus a
//! deterministic markdown rendering of all of it.

use crate::attrib::{self, IterRow, PhaseRow};
use crate::context::ProfileContext;
use crate::converge::{self, Convergence};
use crate::heatmap::{self, ArrayHeatmap};
use obs::export::counter_sample;
use obs::json::Value;
use obs::{Event, EventKind};

/// Everything the profiler computed from one trace.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Benchmark and scale labels, copied from the context.
    pub bench: String,
    pub scale: String,
    /// Events analysed.
    pub events: usize,
    /// Events the collection ring discarded before analysis.
    pub dropped_events: u64,
    /// Per-phase attribution, in presentation order.
    pub phases: Vec<PhaseRow>,
    /// Per-iteration aggregates from the `IterationBoundary` events.
    pub iterations: Vec<IterRow>,
    /// One heatmap per shared array, in registration order.
    pub heatmaps: Vec<ArrayHeatmap>,
    /// Engine convergence diagnostics.
    pub convergence: Convergence,
    /// Perfetto counter samples (`"ph":"C"`) for the enriched Chrome trace.
    pub counter_tracks: Vec<Value>,
    /// Attribution problems (phase-map mismatches, dropped events).
    pub warnings: Vec<String>,
}

impl Profile {
    /// Analyse `events` against the static knowledge in `ctx`.
    /// `dropped_events` is the collector's drop count: a non-zero value
    /// becomes a warning, since every table below is then a lower bound.
    pub fn analyze(events: &[Event], ctx: &ProfileContext, dropped_events: u64) -> Profile {
        let mut warnings = Vec::new();
        if dropped_events > 0 {
            warnings.push(format!(
                "{dropped_events} events were dropped by the collection ring; \
                 all counts below are lower bounds"
            ));
        }
        let (phases, iterations) = attrib::attribute(events, ctx, &mut warnings);
        Profile {
            bench: ctx.bench.clone(),
            scale: ctx.scale.clone(),
            events: events.len(),
            dropped_events,
            phases,
            iterations,
            heatmaps: heatmap::build(events, ctx),
            convergence: converge::build(events),
            counter_tracks: counter_tracks(events, ctx),
            warnings,
        }
    }

    /// Render the whole profile as a markdown document.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, line: &str| {
            out.push_str(line);
            out.push('\n');
        };
        push(
            &mut out,
            &format!("# NUMA profile: {} ({})", self.bench, self.scale),
        );
        push(&mut out, "");
        push(
            &mut out,
            &format!(
                "- events analysed: {} ({} dropped)",
                self.events, self.dropped_events
            ),
        );
        for warning in &self.warnings {
            push(&mut out, &format!("- **warning**: {warning}"));
        }
        push(&mut out, "");

        push(&mut out, "## Phase attribution");
        push(&mut out, "");
        push(
            &mut out,
            "| Phase | Kind | Execs | Wall (ms) | Remote % | Stall (ms) \
             | Mapped | Migr | Vetoed | Frozen | Replay |",
        );
        push(
            &mut out,
            "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|",
        );
        for row in &self.phases {
            push(
                &mut out,
                &format!(
                    "| {} | {} | {} | {:.3} | {:.1} | {:.3} | {} | {} | {} | {} | {} |",
                    row.label,
                    row.kind.label(),
                    row.executions,
                    row.wall_ns * 1e-6,
                    row.remote_fraction() * 100.0,
                    row.stall_ns * 1e-6,
                    row.pages_mapped,
                    row.migrations,
                    row.vetoes,
                    row.freezes,
                    row.replay_moves,
                ),
            );
        }
        push(&mut out, "");

        push(&mut out, "## Iterations");
        push(&mut out, "");
        push(
            &mut out,
            "| Iter | Migrations | Remote fraction | Stall (ms) |",
        );
        push(&mut out, "|---:|---:|---:|---:|");
        for row in &self.iterations {
            push(
                &mut out,
                &format!(
                    "| {} | {} | {:.3} | {:.2} |",
                    row.iter,
                    row.migrations,
                    row.remote_fraction,
                    row.stall_ns * 1e-6
                ),
            );
        }
        push(&mut out, "");

        push(&mut out, "## Convergence");
        push(&mut out, "");
        let c = &self.convergence;
        push(
            &mut out,
            &format!(
                "- migrations: {} total across {} engine invocations",
                c.total_migrations,
                c.decay.len()
            ),
        );
        if !c.decay.is_empty() {
            let curve: Vec<String> = c
                .decay
                .iter()
                .map(|(inv, moved)| format!("{inv}:{moved}"))
                .collect();
            push(&mut out, &format!("- decay curve: {}", curve.join(" ")));
        }
        match (c.deactivated_at, c.deactivation_iteration) {
            (Some(inv), Some(iter)) => push(
                &mut out,
                &format!("- engine deactivated at invocation {inv} (iteration {iter})"),
            ),
            _ => push(&mut out, "- engine never deactivated"),
        }
        push(
            &mut out,
            &format!(
                "- ping-pong census: {} pages returned to a former home, \
                 {} frozen",
                c.ping_pong_pages,
                c.frozen_pages.len()
            ),
        );
        if !c.vetoes.is_empty() {
            let top: Vec<String> = c
                .vetoes
                .iter()
                .take(8)
                .map(|(vpage, count)| format!("{vpage}x{count}"))
                .collect();
            push(
                &mut out,
                &format!("- most-vetoed pages (vpage x vetoes): {}", top.join(" ")),
            );
        }
        push(&mut out, "");

        for map in &self.heatmaps {
            if map.pages == 0 {
                continue;
            }
            push(
                &mut out,
                &format!(
                    "## Heatmap: `{}` ({} pages, {} bins)",
                    map.name, map.pages, map.bins
                ),
            );
            push(&mut out, "");
            for (title, matrix) in [
                ("Accesses (node x bin)", &map.accesses),
                ("Migrations in", &map.migrations_in),
                ("Final placement (pages)", &map.placement),
            ] {
                if ArrayHeatmap::total(matrix) == 0 {
                    continue;
                }
                push(&mut out, &format!("### {title}"));
                push(&mut out, "");
                let mut header = String::from("| node |");
                let mut rule = String::from("|---|");
                for bin in 0..map.bins {
                    header.push_str(&format!(" {bin} |"));
                    rule.push_str("---:|");
                }
                push(&mut out, &header);
                push(&mut out, &rule);
                for (node, row) in matrix.iter().enumerate() {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    push(&mut out, &format!("| n{node} | {} |", cells.join(" | ")));
                }
                push(&mut out, "");
            }
        }
        out
    }
}

/// Perfetto counter tracks: per-iteration remote fraction, migration and
/// stall counters, the engine's per-invocation move count, and cumulative
/// migrations into each array.
fn counter_tracks(events: &[Event], ctx: &ProfileContext) -> Vec<Value> {
    let mut out = Vec::new();
    let mut cumulative = vec![0u64; ctx.arrays.len()];
    for event in events {
        match event.kind {
            EventKind::IterationBoundary {
                migrations,
                remote_fraction,
                stall_ns,
                ..
            } => {
                out.push(counter_sample(
                    "remote fraction",
                    event.t_ns,
                    vec![("remote_fraction", remote_fraction.into())],
                ));
                out.push(counter_sample(
                    "migrations / iteration",
                    event.t_ns,
                    vec![("migrations", migrations.into())],
                ));
                out.push(counter_sample(
                    "stall ms / iteration",
                    event.t_ns,
                    vec![("stall_ms", (stall_ns * 1e-6).into())],
                ));
            }
            EventKind::UpmInvoked { moved, .. } => {
                out.push(counter_sample(
                    "upm pages moved",
                    event.t_ns,
                    vec![("moved", (moved as u64).into())],
                ));
            }
            EventKind::PageMigrated { vpage, .. } => {
                if let Some((a, _)) = ctx.array_of_page(vpage) {
                    cumulative[a] += 1;
                    out.push(counter_sample(
                        &format!("migrations into {}", ctx.arrays[a].name),
                        event.t_ns,
                        vec![("pages", cumulative[a].into())],
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ArraySpan;

    fn ev(t_ns: f64, kind: EventKind) -> Event {
        Event { t_ns, kind }
    }

    /// A miniature but complete run: one setup region, one cold loop, two
    /// iterations of a two-loop body, engine activity between iterations,
    /// and a post-run verification region.
    fn synthetic_run() -> (Vec<Event>, ProfileContext) {
        let page = 4096u64;
        let ctx = ProfileContext::new(
            "CG",
            "tiny",
            4,
            page,
            vec!["init/warm".into()],
            vec!["solve/x".into(), "solve/y".into()],
            vec![ArraySpan::new("a", 0, page * 4)],
        );
        let mut events = Vec::new();
        let mut t = 0.0;
        let mut region = |events: &mut Vec<Event>, id: u64, mapped: &[u64]| {
            t += 10.0;
            events.push(ev(t, EventKind::RegionBegin { region: id }));
            for &vpage in mapped {
                events.push(ev(
                    t,
                    EventKind::PageMapped {
                        vpage,
                        node: (vpage % 4) as usize,
                    },
                ));
            }
            t += 100.0;
            events.push(ev(t, EventKind::RegionEnd { region: id }));
            events.push(ev(
                t,
                EventKind::RegionProfile {
                    region: id,
                    wall_ns: 100.0,
                    local: 60,
                    remote: 40,
                    stall_ns: 20.0,
                },
            ));
        };
        region(&mut events, 0, &[]); // [setup]
        region(&mut events, 1, &[0, 1, 2, 3]); // cold init/warm
        region(&mut events, 2, &[]); // solve/x, iteration 0
        region(&mut events, 3, &[]); // solve/y
        events.push(ev(
            310.0,
            EventKind::PageCounterSample {
                vpage: 1,
                home: 1,
                local: 5,
                rmax: 30,
                rnode: 0,
            },
        ));
        events.push(ev(
            311.0,
            EventKind::PageMigrated {
                vpage: 1,
                from: 1,
                to: 0,
            },
        ));
        events.push(ev(
            312.0,
            EventKind::UpmInvoked {
                invocation: 0,
                moved: 1,
            },
        ));
        events.push(ev(
            313.0,
            EventKind::IterationBoundary {
                iter: 0,
                migrations: 1,
                remote_fraction: 0.4,
                stall_ns: 40.0,
            },
        ));
        region(&mut events, 4, &[]); // solve/x, iteration 1
        region(&mut events, 5, &[]); // solve/y
        events.push(ev(
            320.0,
            EventKind::UpmInvoked {
                invocation: 1,
                moved: 0,
            },
        ));
        events.push(ev(321.0, EventKind::EngineDeactivated { invocation: 1 }));
        events.push(ev(
            322.0,
            EventKind::IterationBoundary {
                iter: 1,
                migrations: 0,
                remote_fraction: 0.1,
                stall_ns: 10.0,
            },
        ));
        region(&mut events, 6, &[]); // [post] verification
        (events, ctx)
    }

    #[test]
    fn analyze_assembles_a_consistent_profile() {
        let (events, ctx) = synthetic_run();
        let profile = Profile::analyze(&events, &ctx, 0);
        assert!(profile.warnings.is_empty(), "{:?}", profile.warnings);

        let find = |label: &str| {
            profile
                .phases
                .iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("missing phase {label}"))
        };
        assert_eq!(find("[setup]").executions, 1);
        let cold = find("cold init/warm");
        assert_eq!((cold.executions, cold.pages_mapped), (1, 4));
        assert_eq!(find("solve/x").executions, 2);
        assert_eq!(find("solve/y").executions, 2);
        let upm = find("[engine] upmlib");
        assert_eq!((upm.executions, upm.migrations), (2, 1));
        assert_eq!(find("[post]").executions, 1);
        // Presentation order: setup, cold, iteration, engine, post.
        let labels: Vec<&str> = profile.phases.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "[setup]",
                "cold init/warm",
                "solve/x",
                "solve/y",
                "[engine] upmlib",
                "[post]"
            ]
        );

        // Per-iteration migrations reconcile with the engine decay curve.
        assert_eq!(profile.iterations.len(), 2);
        assert_eq!(profile.iterations[0].migrations, 1);
        assert_eq!(profile.convergence.decay, vec![(0, 1), (1, 0)]);
        assert_eq!(profile.convergence.deactivated_at, Some(1));
        let per_phase: u64 = profile.phases.iter().map(|r| r.migrations).sum();
        assert_eq!(per_phase, profile.convergence.total_migrations);

        // The heatmap saw the mapping, the counter sample and the move.
        let map = &profile.heatmaps[0];
        assert_eq!(map.pages, 4);
        assert_eq!(ArrayHeatmap::total(&map.placement), 4);
        assert_eq!(map.placement[0].iter().sum::<u64>(), 2, "page 1 moved home");
        assert_eq!(ArrayHeatmap::total(&map.accesses), 35);
        assert_eq!(ArrayHeatmap::total(&map.migrations_in), 1);

        // Counter tracks: 3 per boundary + 1 per invocation + 1 per move.
        assert_eq!(profile.counter_tracks.len(), 3 * 2 + 2 + 1);
        assert!(profile
            .counter_tracks
            .iter()
            .all(|v| v["ph"] == "C" && v["ts"].as_f64().is_some()));
    }

    #[test]
    fn markdown_rendering_covers_every_section() {
        let (events, ctx) = synthetic_run();
        let profile = Profile::analyze(&events, &ctx, 0);
        let md = profile.to_markdown();
        for needle in [
            "# NUMA profile: CG (tiny)",
            "## Phase attribution",
            "| solve/x | iter | 2 |",
            "## Iterations",
            "## Convergence",
            "- decay curve: 0:1 1:0",
            "- engine deactivated at invocation 1 (iteration 1)",
            "## Heatmap: `a` (4 pages, 4 bins)",
            "### Final placement (pages)",
        ] {
            assert!(md.contains(needle), "markdown missing {needle:?}:\n{md}");
        }
    }

    #[test]
    fn dropped_events_surface_as_a_warning() {
        let (events, ctx) = synthetic_run();
        let profile = Profile::analyze(&events, &ctx, 7);
        assert!(profile.warnings.iter().any(|w| w.contains("7 events")));
        assert!(profile.to_markdown().contains("**warning**"));
    }
}
