//! Event statistics collected by the simulator.
//!
//! Per-CPU counts mirror what the R10000 event counters would show (cache
//! hits per level, local vs. remote memory accesses, coherence misses);
//! machine-level counts track page migrations and their charged overhead,
//! which the experiment harness uses for the striped "migration overhead"
//! portion of the paper's Figure 5 bars.

/// Per-simulated-CPU access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CpuStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (L1 misses that hit L2).
    pub l2_hits: u64,
    /// Memory accesses satisfied by the local node.
    pub mem_local: u64,
    /// Memory accesses satisfied by a remote node.
    pub mem_remote: u64,
    /// Of all cache probes, how many failed only because of a coherence
    /// version mismatch (another CPU wrote the line).
    pub coherence_misses: u64,
    /// Total simulated stall time spent in the memory hierarchy, ns.
    pub stall_ns: f64,
    /// Total simulated computation time, ns.
    pub compute_ns: f64,
}

impl CpuStats {
    /// All memory accesses (L2 misses).
    pub fn mem_accesses(&self) -> u64 {
        self.mem_local + self.mem_remote
    }

    /// Fraction of memory accesses that were remote; 0 when there were none.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.mem_accesses();
        if total == 0 {
            0.0
        } else {
            self.mem_remote as f64 / total as f64
        }
    }

    /// Merge another CPU's stats into this one (aggregation helper).
    pub fn merge(&mut self, other: &CpuStats) {
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.mem_local += other.mem_local;
        self.mem_remote += other.mem_remote;
        self.coherence_misses += other.coherence_misses;
        self.stall_ns += other.stall_ns;
        self.compute_ns += other.compute_ns;
    }
}

/// Machine-wide statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MachineStats {
    /// Pages migrated by any engine (kernel or user-level).
    pub page_migrations: u64,
    /// Simulated time charged for migrations (copy + TLB shootdown), ns.
    pub migration_ns: f64,
    /// Parallel regions completed.
    pub regions: u64,
    /// Page faults serviced (first-touch placements count here).
    pub page_faults: u64,
    /// Pages whose user-level migration request was redirected to another
    /// node by the OS best-effort policy (target node out of memory).
    pub best_effort_redirects: u64,
    /// Read-only replicas created.
    pub page_replications: u64,
    /// Replica collapses (a write to a replicated page, or an explicit
    /// collapse).
    pub page_collapses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_fraction() {
        let mut s = CpuStats::default();
        assert_eq!(s.remote_fraction(), 0.0);
        s.mem_local = 3;
        s.mem_remote = 1;
        assert!((s.remote_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(s.mem_accesses(), 4);
    }

    #[test]
    fn remote_fraction_extremes() {
        let all_remote = CpuStats {
            mem_remote: 7,
            ..Default::default()
        };
        assert_eq!(all_remote.remote_fraction(), 1.0);
        let all_local = CpuStats {
            mem_local: 7,
            ..Default::default()
        };
        assert_eq!(all_local.remote_fraction(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CpuStats {
            l1_hits: 1,
            stall_ns: 2.0,
            ..Default::default()
        };
        let b = CpuStats {
            l1_hits: 2,
            l2_hits: 5,
            stall_ns: 3.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.l1_hits, 3);
        assert_eq!(a.l2_hits, 5);
        assert_eq!(a.stall_ns, 5.0);
    }

    #[test]
    fn merge_covers_every_field() {
        let one = CpuStats {
            l1_hits: 1,
            l2_hits: 2,
            mem_local: 3,
            mem_remote: 4,
            coherence_misses: 5,
            stall_ns: 6.0,
            compute_ns: 7.0,
        };
        let mut acc = one;
        acc.merge(&one);
        assert_eq!(
            acc,
            CpuStats {
                l1_hits: 2,
                l2_hits: 4,
                mem_local: 6,
                mem_remote: 8,
                coherence_misses: 10,
                stall_ns: 12.0,
                compute_ns: 14.0,
            }
        );
        // Merging a default is the identity, so aggregation can start from
        // CpuStats::default().
        let mut from_zero = CpuStats::default();
        from_zero.merge(&one);
        assert_eq!(from_zero, one);
        assert!((from_zero.remote_fraction() - 4.0 / 7.0).abs() < 1e-12);
    }
}
