//! `SimArray<T>`: a real data array with a simulated address range.
//!
//! Benchmark kernels compute real results (so their numerics can be
//! verified) while every element access is also played through the machine's
//! memory model. The element data lives in host memory (`Vec<Cell<T>>`); the
//! *placement* being studied is that of the simulated pages backing the
//! array's reserved virtual range.
//!
//! `Cell` gives interior mutability so kernels can hold `&SimArray`
//! references while the machine is borrowed mutably; the simulator executes
//! simulated CPUs sequentially, so there is no aliasing hazard (and
//! `SimArray` is deliberately `!Sync`).
//!
//! Two access planes:
//! * **simulated** — [`SimArray::get`]/[`SimArray::set`]/[`SimArray::update`]
//!   charge simulated time to a CPU;
//! * **host-only** — [`SimArray::peek`]/[`SimArray::poke`] touch the data
//!   without simulation, for initialization and verification code that is
//!   outside the measured computation.

use crate::cpu::{AccessKind, CpuId};
use crate::machine::Machine;
use std::cell::Cell;

/// The address layout of a [`SimArray`], detached from its data.
///
/// Static analysis (the `lint` crate) needs to compute element addresses for
/// arrays it never touches at runtime; `ArrayLayout` carries exactly the
/// fields that determine [`SimArray::vaddr_of`] so the index→address map can
/// be replayed without the array (or the machine) in hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayLayout {
    name: String,
    base: u64,
    elem_bytes: usize,
    len: usize,
    /// `(elems_per_chunk, chunk_stride_elems)` for chunk-aligned arrays.
    chunking: Option<(usize, usize)>,
}

impl ArrayLayout {
    /// Array name (matches [`SimArray::name`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of one element in bytes.
    pub fn elem_bytes(&self) -> usize {
        self.elem_bytes
    }

    /// Simulated virtual address of element `i` — identical to
    /// [`SimArray::vaddr_of`] on the array this layout was taken from.
    #[inline]
    pub fn vaddr_of(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        match self.chunking {
            None => self.base + (i * self.elem_bytes) as u64,
            Some((per_chunk, stride)) => {
                let chunk = i / per_chunk;
                let offset = i % per_chunk;
                self.base + ((chunk * stride + offset) * self.elem_bytes) as u64
            }
        }
    }

    /// The `(base, byte_len)` virtual range, including chunk padding —
    /// identical to [`SimArray::vrange`].
    pub fn vrange(&self) -> (u64, u64) {
        let bytes = match self.chunking {
            None => self.len * self.elem_bytes,
            Some((per_chunk, stride)) => {
                let chunks = self.len.div_ceil(per_chunk);
                chunks * stride * self.elem_bytes
            }
        };
        (self.base, bytes as u64)
    }
}

/// A simulated shared array of `T`.
pub struct SimArray<T> {
    name: String,
    base: u64,
    data: Vec<Cell<T>>,
    /// Chunk-aligned layout, if any: `(elems_per_chunk, chunk_stride_elems)`.
    /// The stride is a whole number of pages, so each chunk starts on a page
    /// boundary — the padding trick the tuned NAS codes use so that
    /// first-touch distributes each thread's slice onto its own node.
    chunking: Option<(usize, usize)>,
}

impl<T: Copy> SimArray<T> {
    /// Allocate an array of `len` elements filled with `init`, reserving a
    /// page-aligned simulated virtual range on `machine`.
    pub fn new(machine: &mut Machine, name: &str, len: usize, init: T) -> Self {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let base = machine.reserve_vspace(bytes.max(1));
        Self {
            name: name.to_string(),
            base,
            data: vec![Cell::new(init); len],
            chunking: None,
        }
    }

    /// Allocate with `chunks` page-aligned chunks: element
    /// `i` lives in chunk `i / ceil(len/chunks)`, and every chunk starts on
    /// its own page. This reproduces the page-boundary padding of the tuned
    /// NAS implementations ("optimized to achieve good data locality with a
    /// first-touch page placement strategy"): with a static schedule over
    /// `chunks` threads, each thread's slice faults onto its own node even
    /// when the slice is smaller than a page.
    pub fn chunk_aligned(
        machine: &mut Machine,
        name: &str,
        len: usize,
        chunks: usize,
        init: T,
    ) -> Self {
        assert!(chunks >= 1);
        let elem = std::mem::size_of::<T>();
        let per_chunk = len.div_ceil(chunks).max(1);
        let chunk_bytes = (per_chunk * elem) as u64;
        let stride_bytes = chunk_bytes.div_ceil(crate::PAGE_SIZE) * crate::PAGE_SIZE;
        let stride_elems = (stride_bytes as usize) / elem;
        let base = machine.reserve_vspace(stride_bytes * chunks as u64);
        Self {
            name: name.to_string(),
            base,
            data: vec![Cell::new(init); len],
            chunking: Some((per_chunk, stride_elems)),
        }
    }

    /// Allocate and initialize from a function of the index (host-only
    /// initialization, no simulated accesses).
    pub fn from_fn(
        machine: &mut Machine,
        name: &str,
        len: usize,
        mut f: impl FnMut(usize) -> T,
    ) -> Self {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let base = machine.reserve_vspace(bytes.max(1));
        Self {
            name: name.to_string(),
            base,
            data: (0..len).map(|i| Cell::new(f(i))).collect(),
            chunking: None,
        }
    }

    /// Array name (diagnostics, hot-area registration).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A detached copy of this array's address layout, for static analysis.
    pub fn layout(&self) -> ArrayLayout {
        ArrayLayout {
            name: self.name.clone(),
            base: self.base,
            elem_bytes: std::mem::size_of::<T>(),
            len: self.data.len(),
            chunking: self.chunking,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Simulated virtual address of element `i`.
    #[inline(always)]
    pub fn vaddr_of(&self, i: usize) -> u64 {
        debug_assert!(i < self.data.len());
        match self.chunking {
            None => self.base + (i * std::mem::size_of::<T>()) as u64,
            Some((per_chunk, stride)) => {
                let chunk = i / per_chunk;
                let offset = i % per_chunk;
                self.base + ((chunk * stride + offset) * std::mem::size_of::<T>()) as u64
            }
        }
    }

    /// The simulated `(base, byte_len)` range backing this array — what
    /// UPMlib's `memrefcnt` registers as a hot memory area.
    pub fn vrange(&self) -> (u64, u64) {
        let bytes = match self.chunking {
            None => self.data.len() * std::mem::size_of::<T>(),
            Some((per_chunk, stride)) => {
                let chunks = self.data.len().div_ceil(per_chunk);
                chunks * stride * std::mem::size_of::<T>()
            }
        };
        (self.base, bytes as u64)
    }

    /// Simulated load of element `i` by `cpu`.
    #[inline(always)]
    pub fn get(&self, machine: &mut Machine, cpu: CpuId, i: usize) -> T {
        machine.touch(cpu, self.vaddr_of(i), AccessKind::Read);
        self.data[i].get()
    }

    /// Simulated store of element `i` by `cpu`.
    #[inline(always)]
    pub fn set(&self, machine: &mut Machine, cpu: CpuId, i: usize, value: T) {
        machine.touch(cpu, self.vaddr_of(i), AccessKind::Write);
        self.data[i].set(value);
    }

    /// Simulated read-modify-write of element `i` (one load + one store).
    #[inline(always)]
    pub fn update(&self, machine: &mut Machine, cpu: CpuId, i: usize, f: impl FnOnce(T) -> T) {
        let addr = self.vaddr_of(i);
        machine.touch(cpu, addr, AccessKind::Read);
        let v = f(self.data[i].get());
        machine.touch(cpu, addr, AccessKind::Write);
        self.data[i].set(v);
    }

    /// Host-only read (initialization/verification; no simulated cost).
    #[inline(always)]
    pub fn peek(&self, i: usize) -> T {
        self.data[i].get()
    }

    /// Host-only write (initialization/verification; no simulated cost).
    #[inline(always)]
    pub fn poke(&self, i: usize, value: T) {
        self.data[i].set(value);
    }

    /// Host-only snapshot of the whole array.
    pub fn to_vec(&self) -> Vec<T> {
        self.data.iter().map(Cell::get).collect()
    }

    /// Host-only fill.
    pub fn fill(&self, value: T) {
        for c in &self.data {
            c.set(value);
        }
    }
}

impl<T> std::fmt::Debug for SimArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimArray")
            .field("name", &self.name)
            .field("base", &format_args!("{:#x}", self.base))
            .field("len", &self.data.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::PAGE_SIZE;

    #[test]
    fn arrays_get_disjoint_page_aligned_ranges() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::<f64>::new(&mut m, "a", 10, 0.0);
        let b = SimArray::<f64>::new(&mut m, "b", 10, 0.0);
        let (abase, alen) = a.vrange();
        let (bbase, _) = b.vrange();
        assert_eq!(abase % PAGE_SIZE, 0);
        assert_eq!(bbase % PAGE_SIZE, 0);
        assert!(abase + alen <= bbase || abase == bbase && alen == 0 || bbase > abase);
        assert!(bbase >= abase + PAGE_SIZE);
    }

    #[test]
    fn simulated_and_host_planes_agree() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", 8, 0.0f64);
        a.set(&mut m, 0, 3, 42.0);
        assert_eq!(a.peek(3), 42.0);
        a.poke(3, 7.0);
        assert_eq!(a.get(&mut m, 0, 3), 7.0);
    }

    #[test]
    fn update_is_read_then_write() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::new(&mut m, "a", 4, 10.0f64);
        a.update(&mut m, 0, 2, |v| v + 1.0);
        assert_eq!(a.peek(2), 11.0);
        // One memory access (the load faulted the page in), everything after
        // hits L1.
        assert!(m.cpu_stats(0).mem_accesses() >= 1);
    }

    #[test]
    fn from_fn_and_snapshot() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::from_fn(&mut m, "sq", 5, |i| (i * i) as f64);
        assert_eq!(a.to_vec(), vec![0.0, 1.0, 4.0, 9.0, 16.0]);
        a.fill(1.0);
        assert_eq!(a.peek(4), 1.0);
    }

    #[test]
    fn chunk_aligned_layout_spreads_chunks_across_pages() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        // 64 elements over 4 chunks of 16: each chunk on its own page.
        let a = SimArray::chunk_aligned(&mut m, "a", 64, 4, 0.0f64);
        assert_eq!(a.vaddr_of(0) % PAGE_SIZE, 0);
        assert_eq!(a.vaddr_of(16) % PAGE_SIZE, 0);
        assert_ne!(
            crate::vpage_of(a.vaddr_of(15)),
            crate::vpage_of(a.vaddr_of(16))
        );
        // Within a chunk, addresses are contiguous.
        assert_eq!(a.vaddr_of(1) - a.vaddr_of(0), 8);
        // vrange covers all chunks.
        let (base, len) = a.vrange();
        assert_eq!(base % PAGE_SIZE, 0);
        assert_eq!(len, 4 * PAGE_SIZE);
        // Data plane is unaffected by the address layout.
        a.poke(63, 9.0);
        assert_eq!(a.get(&mut m, 0, 63), 9.0);
    }

    #[test]
    fn layout_mirrors_array_addresses() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let dense = SimArray::<f64>::new(&mut m, "d", 37, 0.0);
        let chunked = SimArray::chunk_aligned(&mut m, "c", 64, 4, 0.0f64);
        for a in [&dense, &chunked] {
            let l = a.layout();
            assert_eq!(l.name(), a.name());
            assert_eq!(l.len(), a.len());
            assert_eq!(l.elem_bytes(), 8);
            assert_eq!(l.vrange(), a.vrange());
            for i in 0..a.len() {
                assert_eq!(l.vaddr_of(i), a.vaddr_of(i), "elem {i}");
            }
        }
    }

    #[test]
    fn chunk_aligned_first_touch_distributes() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let a = SimArray::chunk_aligned(&mut m, "a", 64, 4, 0.0f64);
        // CPUs 0,2,4,6 (nodes 0..3) each touch one chunk.
        for (chunk, cpu) in [(0usize, 0usize), (1, 2), (2, 4), (3, 6)] {
            for i in chunk * 16..(chunk + 1) * 16 {
                a.get(&mut m, cpu, i);
            }
        }
        for (chunk, node) in [(0usize, 0usize), (1, 1), (2, 2), (3, 3)] {
            let vp = crate::vpage_of(a.vaddr_of(chunk * 16));
            assert_eq!(m.node_of_vpage(vp), Some(node), "chunk {chunk}");
        }
    }

    #[test]
    fn accesses_fault_pages_with_active_policy() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        // 3 pages worth of f64s (2048 per page in tiny config too: 16 KB).
        let n = 3 * (PAGE_SIZE as usize / 8);
        let a = SimArray::new(&mut m, "a", n, 0.0f64);
        // CPU 6 (node 3) touches everything: first-touch => all on node 3.
        for i in 0..n {
            a.get(&mut m, 6, i);
        }
        let (base, len) = a.vrange();
        for vp in crate::vpage_of(base)..crate::vpage_of(base + len) {
            assert_eq!(m.node_of_vpage(vp), Some(3));
        }
    }
}
