//! A deterministic, software-simulated ccNUMA multiprocessor modeled on the
//! SGI Origin2000, the machine used in *"Is Data Distribution Necessary in
//! OpenMP?"* (SC 2000).
//!
//! The simulator is a *cost model*, not a cycle-accurate core model: simulated
//! CPUs execute real Rust computation over [`array::SimArray`]s, and every
//! element access is routed through [`machine::Machine::touch`], which walks a
//! simulated cache hierarchy, a write-invalidate coherence directory, and the
//! NUMA latency table of the Origin2000 (Table 1 of the paper). Secondary
//! cache misses increment per-frame, per-node 11-bit hardware reference
//! counters — the same events counted by the Origin2000 Hub and consumed by
//! both the IRIX kernel migration engine and the paper's user-level UPMlib
//! engine.
//!
//! Everything is deterministic: simulated CPUs are executed sequentially by
//! the `omp` runtime, simulated time is accumulated per CPU, and a parallel
//! region's wall time is the maximum over its CPUs plus a contention
//! correction computed from per-node memory-module load (see
//! [`contention`]).
//!
//! # Example
//!
//! ```
//! use ccnuma::{Machine, MachineConfig, AccessKind};
//!
//! let mut machine = Machine::new(MachineConfig::origin2000_16p());
//! // Map one page on node 3 and touch it from CPU 0 (node 0): remote access.
//! let vaddr = 0x10000;
//! machine.map_page_for_test(vaddr, 3);
//! let ns = machine.cpu_mut(0).touch(vaddr, AccessKind::Read);
//! assert!(ns > 300.0); // memory, not cache
//! ```

pub mod array;
pub mod cache;
pub mod clock;
pub mod coherence;
pub mod contention;
pub mod counters;
pub mod cpu;
pub mod fastpath;
pub mod latency;
pub mod machine;
pub mod memory;
pub mod stats;
pub mod topology;

pub use array::{ArrayLayout, SimArray};
pub use cache::{CacheConfig, SetAssocCache};
pub use clock::GlobalClock;
pub use coherence::Directory;
pub use contention::{ContentionConfig, ContentionModel};
pub use counters::{RefCounters, COUNTER_MAX};
pub use cpu::{AccessKind, CpuContext, CpuId};
pub use fastpath::{FastpathEngine, FastpathOutcome, FastpathStats, PhaseProof};
pub use latency::LatencyModel;
pub use machine::{Machine, MachineConfig};
pub use memory::{FrameId, PhysicalMemory};
pub use stats::{CpuStats, MachineStats};
pub use topology::{NodeId, Topology};

/// Base-2 logarithm of the page size. The Origin2000 used 16 KB pages.
pub const PAGE_SHIFT: u32 = 14;
/// Page size in bytes (16 KB, as on the Origin2000).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// Base-2 logarithm of the cache line size. The R10000 L2 used 128 B lines.
pub const LINE_SHIFT: u32 = 7;
/// Cache line size in bytes.
pub const LINE_SIZE: u64 = 1 << LINE_SHIFT;

/// Virtual page number of a virtual address.
#[inline(always)]
pub fn vpage_of(vaddr: u64) -> u64 {
    vaddr >> PAGE_SHIFT
}

/// Cache line number of a virtual address.
#[inline(always)]
pub fn line_of(vaddr: u64) -> u64 {
    vaddr >> LINE_SHIFT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_and_line_arithmetic() {
        assert_eq!(PAGE_SIZE, 16 * 1024);
        assert_eq!(LINE_SIZE, 128);
        assert_eq!(vpage_of(0), 0);
        assert_eq!(vpage_of(PAGE_SIZE - 1), 0);
        assert_eq!(vpage_of(PAGE_SIZE), 1);
        assert_eq!(line_of(127), 0);
        assert_eq!(line_of(128), 1);
        // 128 lines per page
        assert_eq!(PAGE_SIZE / LINE_SIZE, 128);
    }
}
