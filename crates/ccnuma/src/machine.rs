//! The assembled machine: topology, caches, coherence, memory, counters,
//! page table and clock, with the `touch` fast path that everything above
//! (the `omp` runtime, the NAS kernels) drives.
//!
//! # Layering
//!
//! `ccnuma` provides *mechanism*: frames, a virtual→physical map, a
//! best-effort page allocator/migrator, and per-frame reference counters.
//! *Policy* — which node a freshly faulted page should live on, when the
//! kernel migrates pages, how user-level engines react — lives in the `vmm`
//! and `upmlib` crates. The one policy hook the machine itself needs is the
//! [`Placer`] consulted on a page fault, because faults happen in the middle
//! of the access fast path.

use crate::cache::Probe;
use crate::coherence::Directory;
use crate::contention::{ContentionModel, RegionTiming};
use crate::counters::RefCounters;
use crate::cpu::{AccessKind, CpuContext, CpuId};
use crate::latency::LatencyModel;
use crate::memory::{FrameId, PhysicalMemory};
use crate::stats::{CpuStats, MachineStats};
use crate::topology::{NodeId, Topology};
use crate::{CacheConfig, ContentionConfig, GlobalClock, LINE_SHIFT, PAGE_SHIFT};
use obs::{EventKind, TraceSink, Tracer};

/// Page-placement policy consulted on a page fault.
///
/// Implementations live in the `vmm` crate (first-touch, round-robin,
/// random, worst-case); the machine ships with first-touch as the built-in
/// default, which is also IRIX's default.
pub trait Placer: Send {
    /// Preferred home node for `vpage`, faulted on by `cpu` (whose home node
    /// is `cpu_node`). The machine falls back to the nearest node with free
    /// memory if the preferred node is full.
    fn place(&mut self, vpage: u64, cpu: CpuId, cpu_node: NodeId) -> NodeId;

    /// Human-readable policy name (experiment labels).
    fn name(&self) -> &'static str;
}

/// The built-in default policy: first-touch, as in IRIX.
#[derive(Debug, Default, Clone, Copy)]
pub struct FirstTouchPlacer;

impl Placer for FirstTouchPlacer {
    fn place(&mut self, _vpage: u64, _cpu: CpuId, cpu_node: NodeId) -> NodeId {
        cpu_node
    }

    fn name(&self) -> &'static str {
        "first-touch"
    }
}

/// Errors from explicit page operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The virtual page is not mapped.
    Unmapped,
    /// No frame is free anywhere in the machine.
    OutOfMemory,
    /// The page is mapped already (double map).
    AlreadyMapped,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Unmapped => write!(f, "virtual page is not mapped"),
            MemError::OutOfMemory => write!(f, "no free frame on any node"),
            MemError::AlreadyMapped => write!(f, "virtual page is already mapped"),
        }
    }
}

impl std::error::Error for MemError {}

/// Full machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Interconnect topology.
    pub topology: Topology,
    /// NUMA latency table.
    pub latency: LatencyModel,
    /// L1 geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// Contention model tunables.
    pub contention: ContentionConfig,
    /// Physical frames per node.
    pub frames_per_node: usize,
    /// Size of the simulated virtual address space, in pages.
    pub max_vpages: usize,
    /// Simulated cost of one floating-point operation, ns (R10000 @ 250 MHz,
    /// 2 flops/cycle => 2 ns/flop).
    pub flop_ns: f64,
    /// OS cost of servicing a minor page fault, ns.
    pub fault_ns: f64,
    /// Fork overhead charged when a parallel region opens, ns.
    pub fork_ns: f64,
    /// Barrier overhead charged when a parallel region closes, ns.
    pub barrier_ns: f64,
    /// Fixed per-migration kernel cost (policy run + bookkeeping), ns.
    pub migration_base_ns: f64,
    /// Cost of copying one 16 KB page across the interconnect, ns.
    pub migration_copy_ns: f64,
    /// Per-CPU TLB-shootdown interrupt cost, ns (the paper singles out "the
    /// high overhead of page migration due to the maintenance of TLB
    /// coherence").
    pub migration_percpu_shootdown_ns: f64,
}

impl MachineConfig {
    /// The paper's machine: 16-processor Origin2000 (8 nodes x 2 CPUs),
    /// Table-1 latencies, 4 MB L2, 16 KB pages.
    pub fn origin2000_16p() -> Self {
        Self {
            topology: Topology::origin2000_16p(),
            latency: LatencyModel::origin2000(),
            l1: CacheConfig::origin_l1(),
            l2: CacheConfig::origin_l2(),
            contention: ContentionConfig::default(),
            frames_per_node: 4096, // 64 MB per node of simulated memory
            max_vpages: 16384,     // 256 MB of simulated virtual address space
            flop_ns: 2.0,
            fault_ns: 2_000.0,
            fork_ns: 8_000.0,
            barrier_ns: 4_000.0,
            migration_base_ns: 10_000.0,
            migration_copy_ns: 30_000.0,
            migration_percpu_shootdown_ns: 1_500.0,
        }
    }

    /// The experiment machine: the Origin2000's topology, latencies and
    /// page size, but with caches scaled down by the same factor as the
    /// benchmark problem sizes (the NAS Class A working sets are ~30x the
    /// simulator's, so a faithful *miss-rate* requires L1/L2 scaled by the
    /// same ratio — a 4 MB L2 would swallow a scaled working set whole and
    /// hide every placement effect the paper measures). See DESIGN.md.
    pub fn origin2000_16p_scaled() -> Self {
        Self {
            l1: CacheConfig {
                capacity: 4 * 1024,
                ways: 2,
            },
            l2: CacheConfig {
                capacity: 32 * 1024,
                ways: 2,
            },
            ..Self::origin2000_16p()
        }
    }

    /// A scaled-cache Origin2000 with an arbitrary node count (2 CPUs per
    /// node) — the "truly large-scale Origin2000 systems" experiment the
    /// paper could not run (§2.2: "access to a system of that scale was
    /// impossible for our experiments"). The hypercube grows with the node
    /// count, so maximum hop distances (and with them remote latencies)
    /// rise beyond Table 1's three hops.
    pub fn origin2000_scaled_nodes(nodes: usize) -> Self {
        Self {
            topology: Topology::fat_hypercube(nodes, 2),
            ..Self::origin2000_16p_scaled()
        }
    }

    /// A small machine for unit tests: 4 nodes x 2 CPUs, tiny caches so
    /// cache effects are easy to trigger.
    pub fn tiny_test() -> Self {
        Self {
            topology: Topology::fat_hypercube(4, 2),
            latency: LatencyModel::origin2000(),
            l1: CacheConfig {
                capacity: 1024,
                ways: 2,
            },
            l2: CacheConfig {
                capacity: 8 * 1024,
                ways: 2,
            },
            contention: ContentionConfig::default(),
            frames_per_node: 64,
            max_vpages: 256,
            flop_ns: 2.0,
            fault_ns: 2_000.0,
            fork_ns: 8_000.0,
            barrier_ns: 4_000.0,
            migration_base_ns: 10_000.0,
            migration_copy_ns: 30_000.0,
            migration_percpu_shootdown_ns: 1_500.0,
        }
    }

    /// Total cost of migrating one page on this machine.
    pub fn migration_cost_ns(&self) -> f64 {
        self.migration_base_ns
            + self.migration_copy_ns
            + self.migration_percpu_shootdown_ns * self.topology.cpus() as f64
    }
}

/// Region-recording log filled by the access path while the phase fast path
/// records a region (see [`crate::fastpath`]).
#[derive(Default)]
pub(crate) struct FpRecording {
    /// `(cpu, frame)` of every access that reached memory.
    pub(crate) mem_log: Vec<(CpuId, FrameId)>,
    /// `(cpu, level 0|1, set)` of every cache set probed, in first-probe
    /// order, deduplicated per recording.
    pub(crate) sets: Vec<(u32, u8, u32)>,
    /// Pre-image of each logged set: `assoc` raw `(tag, version, stamp)`
    /// entries per `sets` element, concatenated. Logged before the first
    /// probe mutates the set, and caches are CPU-private, so this is exactly
    /// the set's region-entry state.
    pub(crate) ways: Vec<(u64, u32, u64)>,
}

/// The simulated ccNUMA machine.
///
/// Hot-state fields are `pub(crate)` so the phase fast path
/// ([`crate::fastpath`]) can snapshot and reconstruct them; the public API
/// surface is unchanged.
pub struct Machine {
    pub(crate) config: MachineConfig,
    pub(crate) directory: Directory,
    pub(crate) counters: RefCounters,
    pub(crate) memory: PhysicalMemory,
    pub(crate) page_table: Vec<Option<FrameId>>,
    /// Read-only replicas: vpage -> extra frames on other nodes.
    pub(crate) replicas: std::collections::HashMap<u64, Vec<FrameId>>,
    placer: Box<dyn Placer>,
    pub(crate) cpus: Vec<CpuContext>,
    pub(crate) clock: GlobalClock,
    pub(crate) stats: MachineStats,
    contention: ContentionModel,
    /// Bump allocator for virtual address space handed to `SimArray`s.
    next_vaddr: u64,
    in_region: bool,
    /// Per-CPU suppression: when a CPU's flag is set, its `touch`/`compute`
    /// calls are no-ops — the fast path has already applied that CPU's region
    /// effects in bulk and the kernel body runs for its data side only (the
    /// numeric arrays still need their values). Fully-replayed regions set
    /// every flag; partial replays suppress only the CPUs whose memos hit.
    /// Set exclusively by the `omp` runtime around replayed regions.
    fp_suppressed: Box<[bool]>,
    /// When recording a region, the fast path installs a log here; the
    /// access path appends `(cpu, frame)` per memory access (the per-CPU
    /// attribution that the aggregate reference counters cannot provide) and
    /// snapshots each cache set's pre-image on the first probe that reaches
    /// it — the copy-on-write entry state the memo keys are built from, so
    /// recording costs are proportional to what the region touches, not to
    /// the proof footprint.
    pub(crate) fp_rec: Option<FpRecording>,
    /// First-probe dedup marks for the pre-image log: one word per
    /// `(cpu, level, set)`, holding the recording epoch that last logged it.
    /// Allocated lazily on the first recording.
    fp_marks: Vec<u32>,
    fp_epoch: u32,
    /// Cached `config.l1.sets()` / `l1+l2 sets` (the per-CPU `fp_marks`
    /// stride) so the per-access log check stays division-free.
    fp_l1_sets: usize,
    fp_set_span: usize,
    /// Observability sink: `TraceSink::Null` unless a trace was requested.
    trace: TraceSink,
}

impl Machine {
    /// Build a machine with the built-in first-touch placer.
    pub fn new(config: MachineConfig) -> Self {
        let nodes = config.topology.nodes();
        let cpus = (0..config.topology.cpus())
            .map(|id| {
                CpuContext::new(
                    id,
                    config.topology.node_of_cpu(id),
                    config.l1,
                    config.l2,
                    nodes,
                )
            })
            .collect();
        let lines = config.max_vpages << (PAGE_SHIFT - LINE_SHIFT);
        Self {
            directory: Directory::new(lines),
            counters: RefCounters::new(nodes * config.frames_per_node, nodes),
            memory: PhysicalMemory::new(nodes, config.frames_per_node),
            page_table: vec![None; config.max_vpages],
            replicas: std::collections::HashMap::new(),
            placer: Box::new(FirstTouchPlacer),
            cpus,
            clock: GlobalClock::new(),
            stats: MachineStats::default(),
            contention: ContentionModel::new(config.contention),
            next_vaddr: 0,
            in_region: false,
            fp_suppressed: vec![false; config.topology.cpus()].into_boxed_slice(),
            fp_rec: None,
            fp_marks: Vec::new(),
            fp_epoch: 0,
            fp_l1_sets: config.l1.sets(),
            fp_set_span: config.l1.sets() + config.l2.sets(),
            trace: TraceSink::Null,
            config,
        }
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Interconnect topology.
    pub fn topology(&self) -> &Topology {
        &self.config.topology
    }

    /// Replace the page-placement policy (normally done once, before any
    /// page has faulted). Returns the previous placer.
    pub fn set_placer(&mut self, placer: Box<dyn Placer>) -> Box<dyn Placer> {
        std::mem::replace(&mut self.placer, placer)
    }

    /// Name of the active placement policy.
    pub fn placer_name(&self) -> &'static str {
        self.placer.name()
    }

    /// The global clock.
    pub fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    /// Advance the global clock directly (sequential sections, charged
    /// overheads).
    pub fn advance_clock(&mut self, ns: f64) {
        self.clock.advance(ns);
    }

    /// Machine-wide statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Install a trace sink (observability). Returns the previous sink so a
    /// caller can restore it.
    pub fn set_trace(&mut self, sink: TraceSink) -> TraceSink {
        std::mem::replace(&mut self.trace, sink)
    }

    /// The active trace sink — other layers (vmm, upmlib, omp, nas) emit
    /// their events through the machine so everything shares one timeline.
    pub fn trace_mut(&mut self) -> &mut TraceSink {
        &mut self.trace
    }

    /// Detach the collected trace, disabling tracing.
    pub fn take_trace(&mut self) -> Option<Box<Tracer>> {
        self.trace.take()
    }

    /// Emit an event stamped with the current simulated time. No-op (one
    /// branch) when tracing is off.
    #[inline]
    pub fn trace_event(&mut self, kind: impl FnOnce() -> EventKind) {
        self.trace.emit(self.clock.now_ns(), kind);
    }

    /// Statistics of one CPU.
    pub fn cpu_stats(&self, cpu: CpuId) -> &CpuStats {
        &self.cpus[cpu].stats
    }

    /// Aggregated statistics over all CPUs.
    pub fn aggregate_cpu_stats(&self) -> CpuStats {
        let mut total = CpuStats::default();
        for c in &self.cpus {
            total.merge(&c.stats);
        }
        total
    }

    /// Mutable access to a CPU context (used by the doc example and tests;
    /// the `omp` runtime uses [`Machine::touch`] instead).
    pub fn cpu_mut(&mut self, cpu: CpuId) -> MachineLane<'_> {
        MachineLane { machine: self, cpu }
    }

    /// Number of simulated CPUs.
    pub fn cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Per-frame reference counters (the "hardware" view; user-level code
    /// should go through `vmm`'s `/proc` interface).
    pub fn counters(&self) -> &RefCounters {
        &self.counters
    }

    /// Physical memory pools.
    pub fn memory(&self) -> &PhysicalMemory {
        &self.memory
    }

    // ----------------------------------------------------------------
    // Virtual address space and page table
    // ----------------------------------------------------------------

    /// Reserve `bytes` of virtual address space, page-aligned. Pages are not
    /// mapped until touched (demand paging).
    pub fn reserve_vspace(&mut self, bytes: u64) -> u64 {
        let base = self.next_vaddr;
        let pages = bytes.div_ceil(crate::PAGE_SIZE);
        self.next_vaddr = base + pages * crate::PAGE_SIZE;
        assert!(
            crate::vpage_of(self.next_vaddr) as usize <= self.config.max_vpages,
            "simulated virtual address space exhausted ({} pages)",
            self.config.max_vpages
        );
        base
    }

    /// Current frame of a virtual page, if mapped.
    #[inline]
    pub fn frame_of(&self, vpage: u64) -> Option<FrameId> {
        self.page_table[vpage as usize]
    }

    /// Home node of a virtual page, if mapped.
    #[inline]
    pub fn node_of_vpage(&self, vpage: u64) -> Option<NodeId> {
        self.frame_of(vpage).map(|f| self.memory.node_of_frame(f))
    }

    /// Explicitly map `vpage` on `preferred` (or the closest node with free
    /// memory). This is the mechanism under both page faults and the MLD
    /// placement API. Returns the node actually used.
    pub fn map_page(&mut self, vpage: u64, preferred: NodeId) -> Result<NodeId, MemError> {
        if self.page_table[vpage as usize].is_some() {
            return Err(MemError::AlreadyMapped);
        }
        let frame = self
            .alloc_best_effort(preferred)
            .ok_or(MemError::OutOfMemory)?;
        self.counters.reset_frame(frame);
        self.page_table[vpage as usize] = Some(frame);
        debug_assert_eq!(self.check_invariants(), Ok(()));
        let node = self.memory.node_of_frame(frame);
        self.trace_event(|| EventKind::PageMapped { vpage, node });
        Ok(node)
    }

    /// Unmap a page, freeing its frame and any replicas.
    pub fn unmap_page(&mut self, vpage: u64) -> Result<(), MemError> {
        let frame = self.page_table[vpage as usize]
            .take()
            .ok_or(MemError::Unmapped)?;
        if let Some(frames) = self.replicas.remove(&vpage) {
            for f in frames {
                self.counters.reset_frame(f);
                self.memory.free(f);
            }
        }
        self.counters.reset_frame(frame);
        self.memory.free(frame);
        debug_assert_eq!(self.check_invariants(), Ok(()));
        Ok(())
    }

    /// Verify the page-table/frame bookkeeping invariants that the rest of
    /// the stack — the migration engines and the static analyzer in the
    /// `lint` crate — builds on:
    ///
    /// 1. every frame referenced by the page table or a replica list is
    ///    allocated, and referenced exactly once;
    /// 2. every allocated frame is referenced (no leaks);
    /// 3. replicas belong to mapped pages and each copy of a page (primary
    ///    plus replicas) lives on a distinct node.
    ///
    /// Page operations re-check this in `debug_assert!`s; release builds
    /// skip the scan. Returns `Err(description)` on the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for (vp, frame) in self.page_table.iter().enumerate() {
            if let Some(f) = *frame {
                if !self.memory.is_allocated(f) {
                    return Err(format!("vpage {vp} maps free frame {f}"));
                }
                if !seen.insert(f) {
                    return Err(format!("frame {f} referenced twice (vpage {vp})"));
                }
            }
        }
        for (&vp, reps) in &self.replicas {
            let Some(primary) = self.page_table.get(vp as usize).copied().flatten() else {
                return Err(format!("replica list for unmapped vpage {vp}"));
            };
            let mut nodes = std::collections::HashSet::new();
            nodes.insert(self.memory.node_of_frame(primary));
            for &f in reps {
                if !self.memory.is_allocated(f) {
                    return Err(format!("replica of vpage {vp} on free frame {f}"));
                }
                if !seen.insert(f) {
                    return Err(format!(
                        "frame {f} referenced twice (replica of vpage {vp})"
                    ));
                }
                let node = self.memory.node_of_frame(f);
                if !nodes.insert(node) {
                    return Err(format!("vpage {vp} has two copies on node {node}"));
                }
            }
        }
        let allocated = self.memory.total_frames() - self.memory.total_free();
        if allocated != seen.len() {
            return Err(format!(
                "{allocated} frames allocated but {} referenced (leak)",
                seen.len()
            ));
        }
        Ok(())
    }

    /// Allocate on `preferred`, falling back to the nearest node with a free
    /// frame (IRIX's best-effort strategy).
    fn alloc_best_effort(&mut self, preferred: NodeId) -> Option<FrameId> {
        if let Some(f) = self.memory.alloc_on(preferred) {
            return Some(f);
        }
        for node in self.config.topology.nodes_by_distance(preferred) {
            if let Some(f) = self.memory.alloc_on(node) {
                self.stats.best_effort_redirects += 1;
                return Some(f);
            }
        }
        None
    }

    /// Replicate `vpage` onto `target`: reads from CPUs nearer to the
    /// replica are served by it; any write collapses all replicas (paper
    /// §1.2: "Read-only pages can be replicated in multiple nodes"). Charges
    /// one page-copy cost. Returns the node the replica landed on, or an
    /// error if the page is unmapped / memory is exhausted.
    pub fn replicate_page(&mut self, vpage: u64, target: NodeId) -> Result<NodeId, MemError> {
        let primary = self.page_table[vpage as usize].ok_or(MemError::Unmapped)?;
        let primary_node = self.memory.node_of_frame(primary);
        if primary_node == target
            || self
                .replicas
                .get(&vpage)
                .is_some_and(|r| r.iter().any(|&f| self.memory.node_of_frame(f) == target))
        {
            return Ok(target); // already served locally from there
        }
        let frame = self.memory.alloc_on(target).ok_or(MemError::OutOfMemory)?;
        self.counters.reset_frame(frame);
        self.replicas.entry(vpage).or_default().push(frame);
        // A replica creation is one coherent page copy (no TLB shootdown:
        // existing mappings stay valid; new mappings are added lazily).
        let cost = self.config.migration_base_ns + self.config.migration_copy_ns;
        self.clock.advance(cost);
        self.stats.page_replications += 1;
        self.stats.migration_ns += cost;
        self.trace
            .emit(self.clock.now_ns(), || EventKind::PageReplicated {
                vpage,
                node: target,
            });
        self.trace.inc("page_replications", 1);
        debug_assert_eq!(self.check_invariants(), Ok(()));
        Ok(target)
    }

    /// Drop all replicas of `vpage` (the write-collapse path, also usable
    /// explicitly). Returns how many replicas were freed.
    pub fn collapse_page(&mut self, vpage: u64) -> usize {
        let Some(frames) = self.replicas.remove(&vpage) else {
            return 0;
        };
        let n = frames.len();
        for frame in frames {
            self.counters.reset_frame(frame);
            self.memory.free(frame);
        }
        // Collapsing must invalidate stale mappings machine-wide.
        let cost = self.config.migration_base_ns
            + self.config.migration_percpu_shootdown_ns * self.cpus.len() as f64;
        self.clock.advance(cost);
        self.stats.page_collapses += 1;
        self.trace
            .emit(self.clock.now_ns(), || EventKind::PageCollapsed { vpage });
        self.trace.inc("page_collapses", 1);
        debug_assert_eq!(self.check_invariants(), Ok(()));
        n
    }

    /// Replica count of a page (diagnostics).
    pub fn replica_count(&self, vpage: u64) -> usize {
        self.replicas.get(&vpage).map_or(0, Vec::len)
    }

    /// Sum of the coherence-directory versions of a page's lines — a cheap
    /// user-visible "has anyone written this page?" fingerprint, used by
    /// UPMlib's read-only detection.
    pub fn page_version_sum(&self, vpage: u64) -> u64 {
        let first_line = vpage << (PAGE_SHIFT - LINE_SHIFT);
        let lines = 1u64 << (PAGE_SHIFT - LINE_SHIFT);
        (first_line..first_line + lines)
            .map(|l| self.directory.version(l) as u64)
            .sum()
    }

    /// Migrate `vpage` to `target` (best effort). Charges the full migration
    /// cost (copy + TLB shootdown on every CPU) to the global clock and
    /// invalidates the page's lines in every cache, exactly the costs the
    /// paper identifies as the price of coherent page movement. Returns the
    /// node the page actually landed on.
    pub fn migrate_page(&mut self, vpage: u64, target: NodeId) -> Result<NodeId, MemError> {
        let _hp = hostprof::span_hot("ccnuma.migrate_page");
        if self.replicas.contains_key(&vpage) {
            self.collapse_page(vpage);
        }
        let old_frame = self.page_table[vpage as usize].ok_or(MemError::Unmapped)?;
        let old_node = self.memory.node_of_frame(old_frame);
        if old_node == target {
            return Ok(target);
        }
        let new_frame = self
            .alloc_best_effort(target)
            .ok_or(MemError::OutOfMemory)?;
        let landed = self.memory.node_of_frame(new_frame);
        if landed != target {
            // alloc_best_effort already counted the redirect.
        }
        self.counters.reset_frame(new_frame);
        self.counters.reset_frame(old_frame);
        self.memory.free(old_frame);
        self.page_table[vpage as usize] = Some(new_frame);
        // Post-copy, cached lines of the page must be re-fetched.
        let first_line = vpage << (PAGE_SHIFT - LINE_SHIFT);
        let lines_per_page = 1u64 << (PAGE_SHIFT - LINE_SHIFT);
        for cpu in &mut self.cpus {
            for line in first_line..first_line + lines_per_page {
                cpu.l1.invalidate_line(line);
                cpu.l2.invalidate_line(line);
            }
        }
        let cost = self.config.migration_cost_ns();
        self.clock.advance(cost);
        self.stats.page_migrations += 1;
        self.stats.migration_ns += cost;
        self.trace
            .emit(self.clock.now_ns(), || EventKind::PageMigrated {
                vpage,
                from: old_node,
                to: landed,
            });
        self.trace.inc("page_migrations", 1);
        debug_assert_eq!(self.check_invariants(), Ok(()));
        Ok(landed)
    }

    // ----------------------------------------------------------------
    // The access fast path
    // ----------------------------------------------------------------

    /// Start a fast-path recording: subsequent accesses log memory traffic
    /// and cache-set pre-images until [`Machine::fp_take_recording`].
    pub(crate) fn fp_begin_recording(&mut self) {
        if self.fp_marks.is_empty() {
            self.fp_marks = vec![0; self.cpus.len() * self.fp_set_span];
        }
        self.fp_epoch = self.fp_epoch.wrapping_add(1);
        if self.fp_epoch == 0 {
            self.fp_marks.fill(0);
            self.fp_epoch = 1;
        }
        self.fp_rec = Some(FpRecording::default());
    }

    /// Detach the active recording, if any, disabling logging.
    pub(crate) fn fp_take_recording(&mut self) -> Option<FpRecording> {
        self.fp_rec.take()
    }

    /// Log the pre-image of the cache set `line` maps to in `cpu`'s level-
    /// `level` cache, once per recording. Must be called before anything
    /// mutates the set (probe, fill, or version refresh) — the first log of
    /// a set therefore captures its region-entry state, because a CPU's
    /// caches are modified only through its own accesses.
    #[inline]
    fn fp_log_set(&mut self, cpu: CpuId, level: usize, line: u64) {
        let l1_sets = self.fp_l1_sets;
        let span = self.fp_set_span;
        let cache = if level == 0 {
            &self.cpus[cpu].l1
        } else {
            &self.cpus[cpu].l2
        };
        let set = (line & cache.set_mask()) as usize;
        let mark = cpu * span + if level == 0 { 0 } else { l1_sets } + set;
        if self.fp_marks[mark] == self.fp_epoch {
            return;
        }
        self.fp_marks[mark] = self.fp_epoch;
        let assoc = cache.assoc();
        let base = set * assoc;
        let rec = self.fp_rec.as_mut().expect("logging requires a recording");
        rec.sets.push((cpu as u32, level as u8, set as u32));
        for w in 0..assoc {
            rec.ways.push(cache.way(base + w));
        }
    }

    /// Simulate one memory access by `cpu` to `vaddr`. Returns the simulated
    /// latency in nanoseconds (also accumulated into the CPU's region
    /// account and statistics).
    pub fn touch(&mut self, cpu: CpuId, vaddr: u64, kind: AccessKind) -> f64 {
        if self.fp_suppressed[cpu] {
            return 0.0;
        }
        let _hp = hostprof::span_hot("ccnuma.touch");
        let line = vaddr >> LINE_SHIFT;
        let version = self.directory.version(line);
        let recording = self.fp_rec.is_some();
        if recording {
            self.fp_log_set(cpu, 0, line);
        }
        let l1_probe = self.cpus[cpu].l1.probe(line, version);
        let cost = match l1_probe {
            Probe::Hit => {
                let ctx = &mut self.cpus[cpu];
                ctx.stats.l1_hits += 1;
                let ns = self.config.latency.l1_ns;
                ctx.account.cache_ns += ns;
                ns
            }
            l1_probe => {
                if recording {
                    self.fp_log_set(cpu, 1, line);
                }
                match self.cpus[cpu].l2.probe(line, version) {
                    Probe::Hit => {
                        let ctx = &mut self.cpus[cpu];
                        ctx.stats.l2_hits += 1;
                        ctx.l1.fill(line, version);
                        let ns = self.config.latency.l2_ns;
                        ctx.account.cache_ns += ns;
                        ns
                    }
                    l2_probe => {
                        // Count at most one coherence miss per access: the
                        // line was cached somewhere but invalidated by
                        // another CPU's write.
                        if l1_probe == Probe::Stale || l2_probe == Probe::Stale {
                            self.cpus[cpu].stats.coherence_misses += 1;
                        }
                        self.memory_access(cpu, vaddr, line, version, kind)
                    }
                }
            }
        };
        if kind == AccessKind::Write {
            let _hp = hostprof::span_hot("ccnuma.directory");
            if recording {
                // The version refresh below modifies the line's L1/L2 sets
                // even when this access never probed them (an L1 hit still
                // refreshes a resident L2 copy) — log their pre-images too.
                self.fp_log_set(cpu, 0, line);
                self.fp_log_set(cpu, 1, line);
            }
            let new_version = self.directory.write(line);
            let ctx = &mut self.cpus[cpu];
            ctx.l1.refresh_version(line, new_version);
            ctx.l2.refresh_version(line, new_version);
            // A write to a replicated page must collapse the replicas even
            // when it hits a cache (the memory slow path never sees it).
            if !self.replicas.is_empty() {
                let vpage = vaddr >> PAGE_SHIFT;
                if self.replicas.contains_key(&vpage) {
                    self.collapse_page(vpage);
                }
            }
        }
        let ctx = &mut self.cpus[cpu];
        if self.in_region {
            // Staged in the region account; folded into the run-cumulative
            // stats once at `end_region` so the fast path can bulk-apply a
            // region's stall time with bit-exact f64 results.
            ctx.account.stall_ns += cost;
        } else {
            ctx.stats.stall_ns += cost;
        }
        if self.trace.is_active() {
            self.trace.observe("access_latency_ns", cost as u64);
        }
        cost
    }

    /// Slow path: access reaches memory. Handles demand paging, replica
    /// selection, reference counting, NUMA latency, and cache fills.
    #[cold]
    fn memory_access(
        &mut self,
        cpu: CpuId,
        vaddr: u64,
        line: u64,
        version: u32,
        kind: AccessKind,
    ) -> f64 {
        let _hp = hostprof::span_hot("ccnuma.memory");
        let vpage = vaddr >> PAGE_SHIFT;
        let cpu_node = self.cpus[cpu].node;
        let mut frame = match self.page_table[vpage as usize] {
            Some(f) => f,
            None => {
                // Page fault: ask the placement policy, allocate best-effort.
                // (The policy code lives in `vmm`, hence the span name.)
                let preferred = {
                    let _hp = hostprof::span_hot("vmm.place");
                    self.placer.place(vpage, cpu, cpu_node)
                };
                let frame = self
                    .alloc_best_effort(preferred)
                    .expect("simulated machine out of physical memory");
                self.counters.reset_frame(frame);
                self.page_table[vpage as usize] = Some(frame);
                self.stats.page_faults += 1;
                self.cpus[cpu].account.cache_ns += self.config.fault_ns;
                frame
            }
        };
        if !self.replicas.is_empty() {
            match kind {
                AccessKind::Write => {
                    // Writes collapse any replicas (write-invalidate at page
                    // grain, the replication analogue of cache coherence).
                    if self.replicas.contains_key(&vpage) {
                        self.collapse_page(vpage);
                    }
                }
                AccessKind::Read => {
                    // Reads are served by the nearest copy.
                    if let Some(reps) = self.replicas.get(&vpage) {
                        let mut best = frame;
                        let mut best_hops = self
                            .config
                            .topology
                            .hops(cpu_node, self.memory.node_of_frame(frame));
                        for &f in reps {
                            let h = self
                                .config
                                .topology
                                .hops(cpu_node, self.memory.node_of_frame(f));
                            if h < best_hops {
                                best_hops = h;
                                best = f;
                            }
                        }
                        frame = best;
                    }
                }
            }
        }
        if let Some(rec) = self.fp_rec.as_mut() {
            rec.mem_log.push((cpu, frame));
        }
        let home = self.memory.node_of_frame(frame);
        let hops = self.config.topology.hops(cpu_node, home);
        let ns = self.config.latency.memory_ns(hops);
        let spilled = {
            let _hp = hostprof::span_hot("ccnuma.counters");
            self.counters.record(frame, cpu_node)
        };
        if spilled {
            self.trace
                .emit(self.clock.now_ns(), || EventKind::CounterOverflowSpill {
                    frame,
                    node: cpu_node,
                });
            self.trace.inc("counter_overflow_spills", 1);
        }
        let ctx = &mut self.cpus[cpu];
        if hops == 0 {
            ctx.stats.mem_local += 1;
        } else {
            ctx.stats.mem_remote += 1;
        }
        ctx.account.stall_by_node[home] += ns;
        ctx.account.accesses_by_node[home] += 1;
        ctx.l2.fill(line, version);
        ctx.l1.fill(line, version);
        ns
    }

    /// Charge simulated computation to a CPU (the kernels' flop accounting).
    #[inline]
    pub fn compute(&mut self, cpu: CpuId, flops: u64) {
        self.compute_ns(cpu, flops as f64 * self.config.flop_ns);
    }

    /// Charge raw nanoseconds of computation to a CPU.
    #[inline]
    pub fn compute_ns(&mut self, cpu: CpuId, ns: f64) {
        if self.fp_suppressed[cpu] {
            return;
        }
        let ctx = &mut self.cpus[cpu];
        ctx.account.compute_ns += ns;
        if !self.in_region {
            // In-region compute reaches the cumulative stats via the
            // `end_region` fold (see `touch`); out-of-region compute has no
            // region account to stage in.
            ctx.stats.compute_ns += ns;
        }
    }

    // ----------------------------------------------------------------
    // Region protocol (driven by the omp runtime)
    // ----------------------------------------------------------------

    /// Open a parallel region: clears per-CPU region accounts and charges
    /// the fork overhead.
    pub fn begin_region(&mut self) {
        assert!(!self.in_region, "nested begin_region");
        for c in &mut self.cpus {
            c.account.clear();
        }
        self.clock.advance(self.config.fork_ns);
        self.in_region = true;
        let region = self.stats.regions;
        self.trace
            .emit(self.clock.now_ns(), || EventKind::RegionBegin { region });
    }

    /// Close a parallel region: applies the contention correction, advances
    /// the global clock by the region's wall time plus the barrier overhead,
    /// and returns the timing breakdown.
    pub fn end_region(&mut self) -> RegionTiming {
        assert!(self.in_region, "end_region without begin_region");
        self.in_region = false;
        // Fold the region's staged stall/compute time into the cumulative
        // per-CPU stats. One add per CPU per region keeps the f64 results
        // identical whether the region ran line-by-line or was replayed in
        // bulk by the fast path (which installs recorded accounts wholesale).
        for c in &mut self.cpus {
            c.stats.stall_ns += c.account.stall_ns;
            c.stats.compute_ns += c.account.compute_ns;
        }
        let nodes = self.config.topology.nodes();
        let accounts: Vec<_> = self.cpus.iter().map(|c| c.account.clone()).collect();
        let timing = self.contention.close_region(&accounts, nodes);
        self.clock.advance(timing.wall_ns + self.config.barrier_ns);
        let region = self.stats.regions;
        self.stats.regions += 1;
        self.trace
            .emit(self.clock.now_ns(), || EventKind::RegionEnd { region });
        timing
    }

    /// Whether a region is currently open.
    pub fn in_region(&self) -> bool {
        self.in_region
    }

    /// Suppress (or re-enable) the access/compute simulation. The `omp`
    /// runtime sets this around the body of a region whose machine effects
    /// were already applied in bulk by the phase fast path; the kernel body
    /// still runs for its numeric side, but `touch`/`compute` become no-ops.
    pub fn set_fastpath_suppressed(&mut self, on: bool) {
        self.fp_suppressed.fill(on);
    }

    /// Suppress (or re-enable) the simulation for one CPU — the partial
    /// replay of a region where only some team CPUs hit their memos.
    pub fn set_fastpath_suppressed_cpu(&mut self, cpu: CpuId, on: bool) {
        self.fp_suppressed[cpu] = on;
    }

    /// Whether the access/compute simulation is suppressed for any CPU.
    pub fn fastpath_suppressed(&self) -> bool {
        self.fp_suppressed.iter().any(|&b| b)
    }

    /// Virtual time a CPU has accumulated in the current region, ns. The
    /// `omp` runtime's dynamic-schedule event loop dispatches each chunk to
    /// the CPU with the least accumulated time — the deterministic
    /// simulation of a real dynamic chunk queue.
    pub fn region_cpu_ns(&self, cpu: CpuId) -> f64 {
        self.cpus[cpu].account.base_ns()
    }

    /// Iterate over all mapped virtual pages as `(vpage, frame)` pairs —
    /// the kernel's view for migration-daemon scans.
    pub fn mapped_pages(&self) -> impl Iterator<Item = (u64, FrameId)> + '_ {
        self.page_table
            .iter()
            .enumerate()
            .filter_map(|(vp, f)| f.map(|frame| (vp as u64, frame)))
    }

    /// Test helper: map one page on a specific node.
    pub fn map_page_for_test(&mut self, vaddr: u64, node: NodeId) {
        self.map_page(vaddr >> PAGE_SHIFT, node)
            .expect("map_page_for_test");
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cpus", &self.cpus.len())
            .field("nodes", &self.config.topology.nodes())
            .field("placer", &self.placer.name())
            .field("clock_ns", &self.clock.now_ns())
            .finish_non_exhaustive()
    }
}

/// A borrowed view of one CPU on the machine — the handle the doc example
/// and tests use for direct accesses.
pub struct MachineLane<'m> {
    machine: &'m mut Machine,
    cpu: CpuId,
}

impl MachineLane<'_> {
    /// Simulate one access; see [`Machine::touch`].
    pub fn touch(&mut self, vaddr: u64, kind: AccessKind) -> f64 {
        self.machine.touch(self.cpu, vaddr, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessKind::{Read, Write};

    fn machine() -> Machine {
        Machine::new(MachineConfig::tiny_test())
    }

    #[test]
    fn first_touch_places_locally() {
        let mut m = machine();
        // CPU 5 lives on node 2 in the 4x2 tiny topology.
        m.touch(5, 0, Read);
        assert_eq!(m.node_of_vpage(0), Some(2));
        assert_eq!(m.stats().page_faults, 1);
    }

    #[test]
    fn local_access_cheaper_than_remote() {
        let mut m = machine();
        m.map_page_for_test(0, 0); // page 0 on node 0
        m.map_page_for_test(crate::PAGE_SIZE, 3); // page 1 on node 3
        let local = m.touch(0, 0, Read); // cpu0 = node0
        let remote = m.touch(0, crate::PAGE_SIZE, Read);
        assert_eq!(local, 329.0);
        assert!(remote > local);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut m = machine();
        let first = m.touch(0, 64, Read);
        let second = m.touch(0, 64, Read);
        assert!(first >= 329.0);
        assert_eq!(second, 5.5);
        assert_eq!(m.cpu_stats(0).l1_hits, 1);
    }

    #[test]
    fn write_by_other_cpu_invalidates() {
        let mut m = machine();
        m.touch(0, 0, Read);
        assert_eq!(m.touch(0, 0, Read), 5.5);
        // CPU 2 (different node) writes the same line.
        m.touch(2, 0, Write);
        // CPU 0's copy is now stale: next read goes to memory.
        let ns = m.touch(0, 0, Read);
        assert!(ns >= 329.0, "expected coherence miss, got {ns}");
        assert_eq!(m.cpu_stats(0).coherence_misses, 1);
    }

    #[test]
    fn own_write_keeps_line_fresh() {
        let mut m = machine();
        m.touch(0, 0, Write);
        assert_eq!(m.touch(0, 0, Read), 5.5);
    }

    #[test]
    fn counters_count_memory_accesses_only() {
        let mut m = machine();
        m.touch(0, 0, Read); // memory access, counted
        m.touch(0, 0, Read); // L1 hit, not counted
        let frame = m.frame_of(0).unwrap();
        assert_eq!(m.counters().get(frame, 0), 1);
    }

    #[test]
    fn migration_moves_and_invalidates() {
        let mut m = machine();
        m.touch(0, 0, Read);
        assert_eq!(m.node_of_vpage(0), Some(0));
        let before = m.clock().now_ns();
        let landed = m.migrate_page(0, 3).unwrap();
        assert_eq!(landed, 3);
        assert_eq!(m.node_of_vpage(0), Some(3));
        assert!(m.clock().now_ns() > before);
        assert_eq!(m.stats().page_migrations, 1);
        // Cache copy was invalidated: next access is remote memory.
        let ns = m.touch(0, 0, Read);
        assert!(ns > 329.0);
    }

    #[test]
    fn migration_to_same_node_is_noop() {
        let mut m = machine();
        m.touch(0, 0, Read);
        let before = m.clock().now_ns();
        assert_eq!(m.migrate_page(0, 0), Ok(0));
        assert_eq!(m.clock().now_ns(), before);
        assert_eq!(m.stats().page_migrations, 0);
    }

    #[test]
    fn migration_best_effort_redirects_when_full() {
        let mut cfg = MachineConfig::tiny_test();
        cfg.frames_per_node = 1;
        let mut m = Machine::new(cfg);
        m.map_page(0, 3).unwrap(); // fills node 3
        m.map_page(1, 0).unwrap();
        let landed = m.migrate_page(1, 3).unwrap();
        assert_ne!(landed, 3);
        assert_eq!(m.stats().best_effort_redirects, 1);
    }

    #[test]
    fn migrate_unmapped_fails() {
        let mut m = machine();
        assert_eq!(m.migrate_page(7, 1), Err(MemError::Unmapped));
    }

    #[test]
    fn region_protocol_advances_clock() {
        let mut m = machine();
        m.begin_region();
        for i in 0..100 {
            m.touch(0, i * 8, Read);
        }
        m.compute(0, 1000);
        let t = m.end_region();
        assert!(t.wall_ns > 0.0);
        assert!(m.clock().now_ns() >= t.wall_ns);
        assert_eq!(m.stats().regions, 1);
    }

    #[test]
    fn reserve_vspace_is_page_aligned_and_disjoint() {
        let mut m = machine();
        let a = m.reserve_vspace(100);
        let b = m.reserve_vspace(crate::PAGE_SIZE + 1);
        let c = m.reserve_vspace(1);
        assert_eq!(a, 0);
        assert_eq!(b, crate::PAGE_SIZE);
        assert_eq!(c, 3 * crate::PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "nested begin_region")]
    fn nested_region_panics() {
        let mut m = machine();
        m.begin_region();
        m.begin_region();
    }

    #[test]
    fn replication_serves_reads_locally_until_a_write() {
        let mut m = machine();
        m.map_page_for_test(0, 0);
        // CPU 6 (node 3) reads remotely at first.
        let remote = m.touch(6, 0, Read);
        assert!(remote > 329.0);
        m.replicate_page(0, 3).unwrap();
        assert_eq!(m.replica_count(0), 1);
        assert_eq!(m.stats().page_replications, 1);
        // New line on the page: node 3's read is now local.
        let local = m.touch(6, 256, Read);
        assert_eq!(local, 329.0);
        // Node 0 still reads its own copy locally.
        assert_eq!(m.touch(0, 384, Read), 329.0);
        // A write collapses the replica...
        m.touch(0, 512, Write);
        assert_eq!(m.replica_count(0), 0);
        assert_eq!(m.stats().page_collapses, 1);
        // ...and node 3 is remote again.
        let after = m.touch(6, 640, Read);
        assert!(after > 329.0);
    }

    #[test]
    fn replication_counts_on_the_serving_frame() {
        let mut m = machine();
        m.map_page_for_test(0, 0);
        let primary = m.frame_of(0).unwrap();
        m.replicate_page(0, 3).unwrap();
        m.touch(6, 0, Read); // served by the node-3 replica
        assert_eq!(
            m.counters().get(primary, 3),
            0,
            "primary must not be charged"
        );
    }

    #[test]
    fn migrate_collapses_replicas_and_frees_frames() {
        let mut m = machine();
        m.map_page_for_test(0, 0);
        let free_before = m.memory().total_free();
        m.replicate_page(0, 1).unwrap();
        m.replicate_page(0, 2).unwrap();
        assert_eq!(m.memory().total_free(), free_before - 2);
        m.migrate_page(0, 3).unwrap();
        assert_eq!(m.replica_count(0), 0);
        assert_eq!(m.memory().total_free(), free_before);
    }

    #[test]
    fn replicate_same_node_is_noop() {
        let mut m = machine();
        m.map_page_for_test(0, 2);
        assert_eq!(m.replicate_page(0, 2), Ok(2));
        assert_eq!(m.replica_count(0), 0);
        m.replicate_page(0, 1).unwrap();
        assert_eq!(
            m.replicate_page(0, 1),
            Ok(1),
            "duplicate replica requests are no-ops"
        );
        assert_eq!(m.replica_count(0), 1);
    }

    #[test]
    fn page_version_sum_tracks_writes() {
        let mut m = machine();
        m.map_page_for_test(0, 0);
        let v0 = m.page_version_sum(0);
        m.touch(0, 0, Read);
        assert_eq!(m.page_version_sum(0), v0, "reads leave versions alone");
        m.touch(0, 0, Write);
        assert_eq!(m.page_version_sum(0), v0 + 1);
    }

    #[test]
    fn invariants_hold_through_page_operations() {
        let mut m = machine();
        m.map_page(0, 0).unwrap();
        m.map_page(1, 1).unwrap();
        m.replicate_page(0, 2).unwrap();
        m.migrate_page(1, 3).unwrap();
        m.collapse_page(0);
        m.unmap_page(1).unwrap();
        assert_eq!(m.check_invariants(), Ok(()));
    }

    #[test]
    fn invariants_detect_corruption() {
        // Negative test: hand-corrupt the private bookkeeping and check the
        // invariant scan names each violation.
        let mut m = machine();
        m.map_page(0, 0).unwrap();
        m.map_page(1, 1).unwrap();

        // Double-mapped frame.
        let saved = m.page_table[1];
        m.page_table[1] = m.page_table[0];
        assert!(m
            .check_invariants()
            .is_err_and(|e| e.contains("referenced twice")));
        m.page_table[1] = saved;

        // Leaked frame: allocated but unreachable from the page table.
        let saved = m.page_table[1].take();
        assert!(m.check_invariants().is_err_and(|e| e.contains("leak")));
        m.page_table[1] = saved;

        // Replica list for an unmapped page.
        m.replicas.insert(7, Vec::new());
        assert!(m
            .check_invariants()
            .is_err_and(|e| e.contains("unmapped vpage 7")));
        m.replicas.remove(&7);

        // Replica on the same node as the primary.
        let dup = m.memory.alloc_on(0).unwrap();
        m.replicas.insert(0, vec![dup]);
        assert!(m
            .check_invariants()
            .is_err_and(|e| e.contains("two copies on node 0")));
        m.replicas.remove(&0);
        m.memory.free(dup);

        assert_eq!(m.check_invariants(), Ok(()));
    }

    #[test]
    fn map_errors() {
        let mut m = machine();
        m.map_page(0, 0).unwrap();
        assert_eq!(m.map_page(0, 1), Err(MemError::AlreadyMapped));
        m.unmap_page(0).unwrap();
        assert_eq!(m.unmap_page(0), Err(MemError::Unmapped));
    }
}
