//! Physical memory: per-node frame pools and the virtual→physical map.
//!
//! Frames are 16 KB (one page) and are numbered consecutively within nodes,
//! so the home node of a frame is `frame / frames_per_node` — a pure
//! function, as on real hardware where a physical address encodes its memory
//! module. Allocation is deterministic: each node's free list hands out the
//! lowest-numbered free frame first.

use crate::topology::NodeId;
use std::collections::BTreeSet;

/// Identifier of a physical page frame.
pub type FrameId = usize;

/// Per-node physical frame pools.
#[derive(Debug, Clone)]
pub struct PhysicalMemory {
    frames_per_node: usize,
    nodes: usize,
    /// Free frames per node. `BTreeSet` keeps allocation order deterministic
    /// (lowest frame first) and makes free/alloc O(log n).
    free: Vec<BTreeSet<FrameId>>,
}

impl PhysicalMemory {
    /// A machine with `nodes` nodes of `frames_per_node` frames each.
    pub fn new(nodes: usize, frames_per_node: usize) -> Self {
        assert!(nodes > 0 && frames_per_node > 0);
        let free = (0..nodes)
            .map(|n| (n * frames_per_node..(n + 1) * frames_per_node).collect())
            .collect();
        Self {
            frames_per_node,
            nodes,
            free,
        }
    }

    /// Home node of a frame.
    #[inline(always)]
    pub fn node_of_frame(&self, frame: FrameId) -> NodeId {
        debug_assert!(frame < self.nodes * self.frames_per_node);
        frame / self.frames_per_node
    }

    /// Total frames in the machine.
    pub fn total_frames(&self) -> usize {
        self.nodes * self.frames_per_node
    }

    /// Frames currently free on `node`.
    pub fn free_on(&self, node: NodeId) -> usize {
        self.free[node].len()
    }

    /// Total free frames.
    pub fn total_free(&self) -> usize {
        self.free.iter().map(|s| s.len()).sum()
    }

    /// Allocate a frame on exactly `node`; `None` if that node is full.
    pub fn alloc_on(&mut self, node: NodeId) -> Option<FrameId> {
        let first = *self.free[node].iter().next()?;
        self.free[node].remove(&first);
        Some(first)
    }

    /// Return a frame to its node's pool.
    ///
    /// # Panics
    /// Panics if the frame was already free (double free).
    pub fn free(&mut self, frame: FrameId) {
        let node = self.node_of_frame(frame);
        let inserted = self.free[node].insert(frame);
        assert!(inserted, "double free of frame {frame}");
    }

    /// Whether a frame is currently allocated.
    pub fn is_allocated(&self, frame: FrameId) -> bool {
        !self.free[self.node_of_frame(frame)].contains(&frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_deterministic_lowest_first() {
        let mut m = PhysicalMemory::new(2, 4);
        assert_eq!(m.alloc_on(0), Some(0));
        assert_eq!(m.alloc_on(0), Some(1));
        assert_eq!(m.alloc_on(1), Some(4));
        m.free(0);
        assert_eq!(m.alloc_on(0), Some(0));
    }

    #[test]
    fn node_exhaustion() {
        let mut m = PhysicalMemory::new(2, 2);
        assert!(m.alloc_on(0).is_some());
        assert!(m.alloc_on(0).is_some());
        assert_eq!(m.alloc_on(0), None);
        assert_eq!(m.free_on(0), 0);
        assert_eq!(m.free_on(1), 2);
    }

    #[test]
    fn frame_to_node_mapping() {
        let m = PhysicalMemory::new(4, 8);
        assert_eq!(m.node_of_frame(0), 0);
        assert_eq!(m.node_of_frame(7), 0);
        assert_eq!(m.node_of_frame(8), 1);
        assert_eq!(m.node_of_frame(31), 3);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut m = PhysicalMemory::new(1, 2);
        let f = m.alloc_on(0).unwrap();
        m.free(f);
        m.free(f);
    }

    #[test]
    fn allocated_tracking() {
        let mut m = PhysicalMemory::new(1, 2);
        assert!(!m.is_allocated(0));
        let f = m.alloc_on(0).unwrap();
        assert!(m.is_allocated(f));
        m.free(f);
        assert!(!m.is_allocated(f));
    }
}
