//! Per-frame, per-node hardware reference counters, with kernel-extended
//! software counters.
//!
//! Paper §2.1: *"Each physical memory frame is equipped with a set of 11-bit
//! hardware counters. Each set of counters contains one counter per node in
//! the system ... The counters track the number of accesses from each node to
//! each page frame in memory."*
//!
//! The hardware counters are incremented by the memory system on every
//! access that reaches memory (i.e. every secondary-cache miss), exactly as
//! on the Origin2000 Hub, and saturate at `2^11 - 1 = 2047`. Because real
//! workloads overflow 11 bits within one observation window, IRIX maintains
//! *extended reference counters* in software: an overflow interrupt folds
//! the hardware count into a wide kernel counter (this is the `mmci`
//! extended-counter facility the paper's `/proc` interface reads). The
//! simulator reproduces that split: [`RefCounters::record`] drives the
//! 11-bit hardware counter and spills full blocks into a 64-bit extension;
//! [`RefCounters::get`] returns the combined (kernel-visible) value.

use crate::topology::NodeId;
use std::sync::atomic::{AtomicU16, AtomicU64, Ordering};

/// Saturation value of the Origin2000's 11-bit hardware counters.
pub const COUNTER_MAX: u16 = (1 << 11) - 1;

/// Counter banks for every frame in the machine, one counter per node.
#[derive(Debug)]
pub struct RefCounters {
    nodes: usize,
    /// 11-bit hardware counters, flat `[frame][node]` layout.
    hw: Vec<AtomicU16>,
    /// Kernel-extended counters: completed 2047-blocks spilled on overflow.
    extended: Vec<AtomicU64>,
    /// Total accesses ever recorded (monotone; unaffected by per-frame
    /// resets/decay). The phase fast path validates a recorded region's
    /// aggregate counter traffic against this in O(1).
    recorded: AtomicU64,
}

impl RefCounters {
    /// Counters for `frames` frames on a machine with `nodes` nodes.
    pub fn new(frames: usize, nodes: usize) -> Self {
        let mut hw = Vec::with_capacity(frames * nodes);
        hw.resize_with(frames * nodes, || AtomicU16::new(0));
        let mut extended = Vec::with_capacity(frames * nodes);
        extended.resize_with(frames * nodes, || AtomicU64::new(0));
        Self {
            nodes,
            hw,
            extended,
            recorded: AtomicU64::new(0),
        }
    }

    /// Total accesses ever recorded via [`RefCounters::record`] or
    /// [`RefCounters::bulk_add`]. Monotone: per-frame resets and decay do
    /// not subtract from it.
    #[inline]
    pub fn total_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    #[inline(always)]
    fn idx(&self, frame: usize, node: NodeId) -> usize {
        debug_assert!(node < self.nodes);
        frame * self.nodes + node
    }

    /// Record one memory access to `frame` from `node`. On hardware-counter
    /// overflow the block is folded into the kernel's extended counter (the
    /// IRIX overflow-interrupt path). Returns `true` when this access
    /// triggered an overflow spill (the observability layer traces these).
    #[inline(always)]
    pub fn record(&self, frame: usize, node: NodeId) -> bool {
        let i = self.idx(frame, node);
        let hw = &self.hw[i];
        // Relaxed is fine: simulated CPUs run sequentially.
        self.recorded
            .store(self.recorded.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        let cur = hw.load(Ordering::Relaxed);
        if cur >= COUNTER_MAX {
            // Overflow interrupt: fold the full block (including this
            // access) into the kernel's extended counter and restart the
            // hardware counter.
            hw.store(0, Ordering::Relaxed);
            self.extended[i].fetch_add(cur as u64 + 1, Ordering::Relaxed);
            true
        } else {
            hw.store(cur + 1, Ordering::Relaxed);
            false
        }
    }

    /// Record `count` memory accesses to `frame` from `node` in one step —
    /// exactly equivalent to `count` calls to [`RefCounters::record`],
    /// including the overflow-spill arithmetic: the hardware counter ends at
    /// `(hw + count) mod 2048` and every completed 2048-block folds into the
    /// extended counter. Used by the phase fast path to land a region's
    /// counter samples in bulk; callers that need per-spill observability
    /// events must use `record`.
    pub fn bulk_add(&self, frame: usize, node: NodeId, count: u64) {
        if count == 0 {
            return;
        }
        self.recorded.store(
            self.recorded.load(Ordering::Relaxed) + count,
            Ordering::Relaxed,
        );
        let i = self.idx(frame, node);
        let block = COUNTER_MAX as u64 + 1;
        let total = self.hw[i].load(Ordering::Relaxed) as u64 + count;
        self.hw[i].store((total % block) as u16, Ordering::Relaxed);
        let blocks = total / block;
        if blocks > 0 {
            self.extended[i].fetch_add(blocks * block, Ordering::Relaxed);
        }
    }

    /// Kernel-visible count: extended blocks plus the live hardware counter.
    #[inline]
    pub fn get(&self, frame: usize, node: NodeId) -> u64 {
        let i = self.idx(frame, node);
        self.extended[i].load(Ordering::Relaxed) + self.hw[i].load(Ordering::Relaxed) as u64
    }

    /// Raw 11-bit hardware counter value (diagnostics/tests).
    pub fn hw_value(&self, frame: usize, node: NodeId) -> u16 {
        self.hw[self.idx(frame, node)].load(Ordering::Relaxed)
    }

    /// Snapshot all per-node counts of a frame (kernel-visible values).
    pub fn snapshot(&self, frame: usize) -> Vec<u64> {
        (0..self.nodes).map(|n| self.get(frame, n)).collect()
    }

    /// Zero the counters of one frame (done when a frame is freed or
    /// reallocated — a migrated page lands on a fresh frame whose counters
    /// start from zero — and by user-level observation-window resets).
    pub fn reset_frame(&self, frame: usize) {
        for n in 0..self.nodes {
            let i = self.idx(frame, n);
            self.hw[i].store(0, Ordering::Relaxed);
            self.extended[i].store(0, Ordering::Relaxed);
        }
    }

    /// Halve the counters of one frame — the aging step of the IRIX kernel
    /// migration daemon, which keeps the comparison windowed toward recent
    /// behaviour instead of accumulating forever.
    pub fn decay_frame(&self, frame: usize) {
        for n in 0..self.nodes {
            let i = self.idx(frame, n);
            let hw = &self.hw[i];
            hw.store(hw.load(Ordering::Relaxed) / 2, Ordering::Relaxed);
            let ext = &self.extended[i];
            ext.store(ext.load(Ordering::Relaxed) / 2, Ordering::Relaxed);
        }
    }

    /// Number of nodes per counter bank.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// `(local, max_remote, argmax_remote_node)` for a frame homed on
    /// `home`. This is the triple every competitive migration criterion in
    /// the paper consumes. Ties between remote nodes break toward the lower
    /// node id, deterministically.
    pub fn competitive_view(&self, frame: usize, home: NodeId) -> (u64, u64, NodeId) {
        let local = self.get(frame, home);
        let mut best = 0u64;
        let mut best_node = home;
        for n in 0..self.nodes {
            if n == home {
                continue;
            }
            let c = self.get(frame, n);
            if c > best {
                best = c;
                best_node = n;
            }
        }
        (local, best, best_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read() {
        let c = RefCounters::new(4, 8);
        c.record(2, 5);
        c.record(2, 5);
        c.record(2, 1);
        assert_eq!(c.get(2, 5), 2);
        assert_eq!(c.get(2, 1), 1);
        assert_eq!(c.get(2, 0), 0);
        assert_eq!(c.get(3, 5), 0);
    }

    #[test]
    fn hardware_counter_spills_into_extension() {
        let c = RefCounters::new(1, 2);
        for _ in 0..5000 {
            c.record(0, 1);
        }
        // The kernel-visible value keeps counting past 11 bits...
        assert_eq!(c.get(0, 1), 5000);
        // ...while the live hardware counter stays within its width.
        assert!(c.hw_value(0, 1) <= COUNTER_MAX);
        assert_eq!(COUNTER_MAX, 2047);
    }

    #[test]
    fn record_reports_exactly_the_spilling_access() {
        let c = RefCounters::new(1, 2);
        // 2047 accesses saturate the hardware counter without spilling...
        for _ in 0..COUNTER_MAX {
            assert!(!c.record(0, 0));
        }
        assert_eq!(c.hw_value(0, 0), COUNTER_MAX);
        // ...the 2048th takes the overflow-interrupt path: the full block
        // folds into the extended counter and the hw counter restarts.
        assert!(c.record(0, 0));
        assert_eq!(c.hw_value(0, 0), 0);
        assert_eq!(c.get(0, 0), COUNTER_MAX as u64 + 1);
        // The next access is an ordinary increment again.
        assert!(!c.record(0, 0));
        assert_eq!(c.get(0, 0), COUNTER_MAX as u64 + 2);
    }

    #[test]
    fn saturation_is_per_counter_not_per_frame() {
        let c = RefCounters::new(2, 2);
        for _ in 0..=COUNTER_MAX {
            c.record(0, 0);
        }
        // Node 0's bank spilled; node 1's and frame 1's banks are untouched.
        assert_eq!(c.hw_value(0, 0), 0);
        assert_eq!(c.hw_value(0, 1), 0);
        assert_eq!(c.get(0, 1), 0);
        assert_eq!(c.get(1, 0), 0);
    }

    #[test]
    fn concurrent_record_is_safe_and_bounded() {
        use std::sync::Arc;
        // `record` is deliberately a racy load/store pair (the simulated
        // CPUs run sequentially), but the type is Sync: concurrent use must
        // stay memory-safe. Racing increments may be lost (overwritten
        // stores) and racing spills may double-fold a block, so the only
        // hard bounds are: the hardware counter never leaves its 11-bit
        // range (every store writes 0 or a value that was < COUNTER_MAX),
        // and each call contributes at most one full block to the total.
        const THREADS: usize = 4;
        const PER_THREAD: usize = 10_000;
        const JOIN_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);
        let calls = (THREADS * PER_THREAD) as u64;
        let c = Arc::new(RefCounters::new(1, 2));
        // Every recorder reports through the channel before exiting;
        // `recv_timeout` turns a wedged recorder into a test failure
        // instead of a hung test run.
        let (tx, rx) = std::sync::mpsc::channel::<u64>();
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let c = Arc::clone(&c);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    let mut spilled = 0u64;
                    for _ in 0..PER_THREAD {
                        if c.record(0, 0) {
                            spilled += 1;
                        }
                    }
                    tx.send(spilled).expect("main thread waits on the channel");
                })
            })
            .collect();
        drop(tx);
        let mut spills = 0u64;
        for _ in 0..THREADS {
            spills += rx
                .recv_timeout(JOIN_TIMEOUT)
                .expect("a recorder thread wedged or died");
        }
        for h in handles {
            // Reporting is each recorder's last act, so these joins cannot
            // block.
            h.join().expect("recorder thread must not panic");
        }
        assert!(c.hw_value(0, 0) <= COUNTER_MAX);
        let total = c.get(0, 0);
        assert!(total > 0);
        assert!(
            total <= calls * (COUNTER_MAX as u64 + 1),
            "each call folds at most one block"
        );
        assert!(spills <= calls);
        // The other bank stayed untouched through all of it.
        assert_eq!(c.get(0, 1), 0);
        // Back on one thread the counter is exact again: the racy window is
        // over, so a known number of records advances the total by exactly
        // that much.
        for _ in 0..100 {
            c.record(0, 0);
        }
        assert_eq!(c.get(0, 0), total + 100, "single-threaded totals are exact");
    }

    #[test]
    fn bulk_add_matches_repeated_record() {
        // Every interesting phase alignment: starting below, at, and just
        // past a spill boundary, with bulk sizes spanning several blocks.
        for start in [0u64, 1, 2046, 2047, 2048] {
            for count in [0u64, 1, 2046, 2047, 2048, 2049, 5000] {
                let a = RefCounters::new(1, 2);
                let b = RefCounters::new(1, 2);
                for _ in 0..start {
                    a.record(0, 1);
                    b.record(0, 1);
                }
                for _ in 0..count {
                    a.record(0, 1);
                }
                b.bulk_add(0, 1, count);
                assert_eq!(
                    a.get(0, 1),
                    b.get(0, 1),
                    "totals diverge at start={start} count={count}"
                );
                assert_eq!(
                    a.hw_value(0, 1),
                    b.hw_value(0, 1),
                    "hw state diverges at start={start} count={count}"
                );
            }
        }
    }

    #[test]
    fn competitive_view_finds_max_remote() {
        let c = RefCounters::new(1, 4);
        for _ in 0..5 {
            c.record(0, 0); // home
        }
        for _ in 0..9 {
            c.record(0, 2);
        }
        for _ in 0..3 {
            c.record(0, 3);
        }
        let (local, rmax, rnode) = c.competitive_view(0, 0);
        assert_eq!((local, rmax, rnode), (5, 9, 2));
    }

    #[test]
    fn competitive_view_tie_breaks_low_node() {
        let c = RefCounters::new(1, 4);
        c.record(0, 3);
        c.record(0, 1);
        let (_, rmax, rnode) = c.competitive_view(0, 0);
        assert_eq!((rmax, rnode), (1, 1));
    }

    #[test]
    fn reset_frame_clears_only_that_frame() {
        let c = RefCounters::new(2, 2);
        for _ in 0..3000 {
            c.record(0, 0);
        }
        c.record(1, 1);
        c.reset_frame(0);
        assert_eq!(c.get(0, 0), 0);
        assert_eq!(c.get(1, 1), 1);
    }

    #[test]
    fn decay_halves_combined_value() {
        let c = RefCounters::new(1, 2);
        for _ in 0..4000 {
            c.record(0, 0);
        }
        let before = c.get(0, 0);
        c.decay_frame(0);
        let after = c.get(0, 0);
        assert!(after <= before / 2 + 1, "decay {before} -> {after}");
        assert!(after >= before / 2 - 1);
    }
}
