//! Phase-level bulk-access engine: per-CPU record-and-replay memoization of
//! proven parallel regions.
//!
//! The simulator models every line access individually, which makes iterative
//! kernels pay the full cache/coherence walk on every iteration even though
//! the machine-visible effect of a steady-state phase is identical each time.
//! The `lint` crate's KernelModels are address-exact, so the `nas` layer can
//! derive a [`PhaseProof`] — the complete set of lines a region touches, with
//! per-line write counts and the (unique) writing thread, for loops whose
//! ownership analysis shows no cross-CPU write sharing.
//!
//! **Granularity.** Memos are per *team CPU*, not per region. For an eligible
//! region, one CPU's walk is provably independent of every other CPU's:
//! caches are private; reference counters are written, never read, in-region;
//! and the directory versions a CPU observes cannot be moved by another
//! thread's in-region writes (a written line is accessed by its writer only).
//! So each CPU independently hits or misses on its own. A region replays
//! wholesale when every CPU hits; when only some hit (in practice the master
//! CPU, whose cache carries long-memory junk from serial regions, drifts
//! while the workers stabilize), the hitters' effects are applied in bulk and
//! they run suppressed while the drifters execute the exact path and
//! re-record.
//!
//! **Keys and cost.** A memo's key covers exactly the cache sets its walk
//! probed and the frames it reached memory on — untouched state cannot
//! influence the walk, and excluding it makes small regions insensitive to
//! ambient cache junk. Matching normalizes each touched set of the *live*
//! cache on the fly (tags classified as proof-line / empty / other, coherence
//! freshness relative to the directory, LRU as per-set rank permutations —
//! absolute ticks and versions grow monotonically and would never repeat) and
//! compares it against the stored key, so a lookup costs what the memoized
//! walk touched, never what the proof footprint spans. Recording is
//! copy-on-write: the machine logs each probed set's pre-image the first time
//! the region reaches it (see `Machine::fp_log_set`), and the exit diff runs
//! over exactly those sets.
//!
//! **Soundness.** The simulator is sequential and deterministic. An eligible
//! CPU's per-access outcomes depend only on the touched sets' way states
//! (captured up to the exact equivalences the normalization encodes — a
//! non-proof tag can never match a probed proof line and matters only through
//! its LRU rank; absolute versions matter only through freshness), the
//! directory versions of proof lines (freshness bits, evaluated against the
//! region-entry directory on both the record and the match side), and the
//! frames of the pages it accesses memory on (in the key verbatim). Counter
//! bulk adds land exact final values including overflow spills because the
//! counters are never read in-region. Identical key ⇒ identical per-access
//! outcomes ⇒ the memo reconstructs the exact machine state line-by-line
//! execution would have produced — bit-identical f64s included, because
//! region stall/compute time is staged in per-region accounts and folded into
//! cumulative stats once per region (see `Machine::end_region`). Apply order
//! mirrors execution: replayed threads' directory bumps land before any cache
//! fix-up reads versions back, and a live thread can never observe a replayed
//! thread's lines (or vice versa) by eligibility.
//!
//! **Fallback.** Every precondition failure — unmapped proof page, active
//! replicas, active trace, team mismatch — returns
//! [`FastpathOutcome::Skip`] and the region runs the exact line-by-line path.
//! Recording re-validates the proof at region exit (did the directory move
//! exactly as the full team's claims say? do the reference-counter deltas
//! match the memory accesses the machine logged? did anything outside the
//! footprint change?); a violated contract discards the memos in release
//! builds and fires a `debug_assert!` in debug builds, so a lying proof can
//! degrade performance but never correctness.

use std::collections::{BTreeMap, HashMap};

use crate::cache::{SetAssocCache, INVALID_TAG};
use crate::coherence::Directory;
use crate::contention::CpuRegionAccount;
use crate::cpu::CpuId;
use crate::machine::{FpRecording, Machine};
use crate::memory::FrameId;
use crate::stats::MachineStats;
use crate::{LINE_SHIFT, PAGE_SHIFT};

/// Maximum associativity the fast path handles (normalization scratch
/// buffers are fixed-size; the modeled machines are 2-way).
const MAX_ASSOC: usize = 8;

/// Memo variants kept per (label, team CPU) before LRU eviction.
const MAX_VARIANTS: usize = 8;

/// Key tag for an empty way.
const KEY_EMPTY: u64 = u64::MAX;
/// Key tag for a valid line outside the proof's access set. Sound because
/// such a line can never tag-match a probed proof line — it matters only as
/// an eviction victim, which its LRU rank captures. Proof lines are bounded
/// by the virtual address space (≪ 2^40), so the sentinels cannot collide
/// with a real line number.
const KEY_OTHER: u64 = u64::MAX - 1;

/// The `nas`→`ccnuma` contract: a static guarantee, derived from lint's
/// KernelModel, that one parallel region touches exactly `lines` (writing
/// each line the claimed number of times, from the claimed thread) and
/// nothing else, with no line written by one CPU and accessed by another.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProof {
    /// Phase label (`"phase/loop"`); memo pools are shared per label, so the
    /// cold-start and iteration instances of the same loop reuse each other's
    /// recordings.
    pub label: String,
    /// Team size the proof was derived for.
    pub threads: usize,
    /// Every line the region touches, sorted and deduplicated.
    pub lines: Vec<u64>,
    /// `(line, write count, writer thread)`, sorted by line, zero-count
    /// entries omitted. Eligibility guarantees the writer is unique per line.
    pub line_writes: Vec<(u64, u32, u32)>,
    /// Every page the region touches, sorted (derived from `lines`).
    pub pages: Vec<u64>,
}

impl PhaseProof {
    /// Assemble a proof; `lines` must be sorted and unique, `line_writes`
    /// sorted with nonzero counts over a subset of `lines` and writer
    /// threads below `threads`.
    pub fn new(
        label: String,
        threads: usize,
        lines: Vec<u64>,
        line_writes: Vec<(u64, u32, u32)>,
    ) -> Self {
        debug_assert!(threads > 0);
        debug_assert!(lines.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(line_writes.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(line_writes
            .iter()
            .all(|&(l, c, t)| c > 0 && (t as usize) < threads && lines.binary_search(&l).is_ok()));
        let mut pages: Vec<u64> = lines
            .iter()
            .map(|&l| l >> (PAGE_SHIFT - LINE_SHIFT))
            .collect();
        pages.dedup(); // lines sorted => page list sorted
        Self {
            label,
            threads,
            lines,
            line_writes,
            pages,
        }
    }

    /// Claimed total write count of `line` (0 when never written).
    fn writes_of(&self, line: u64) -> u32 {
        match self.line_writes.binary_search_by_key(&line, |e| e.0) {
            Ok(i) => self.line_writes[i].1,
            Err(_) => 0,
        }
    }
}

/// Engine counters (diagnostics; surfaced by the `omp` runtime and the
/// experiment harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastpathStats {
    /// Regions replayed wholesale (every team CPU hit its memo).
    pub replays: u64,
    /// Regions that recorded at least one CPU memo.
    pub records: u64,
    /// Regions where at least one CPU missed (each starts a recording).
    pub misses: u64,
    /// Regions rejected by a precondition or a failed exit validation.
    pub rejects: u64,
    /// Individual CPU memo hits (includes the hitters of partial regions).
    pub cpu_replays: u64,
    /// Individual CPU memos recorded.
    pub cpu_records: u64,
}

/// What the caller must do with the region after consulting the engine.
// The `Record` payload dwarfs the unit variants, but tokens are created
// once per missed region and moved twice — boxing would cost more in
// call-site noise than the occasional large move costs in cycles.
#[allow(clippy::large_enum_variant)]
pub enum FastpathOutcome {
    /// Every team CPU hit; all effects were applied. Run the region body
    /// with the machine fully suppressed.
    Replay,
    /// At least one CPU missed. Hitters' effects were applied — suppress
    /// exactly [`RecordToken::replayed_cpus`] — then run the body (the
    /// misses execute the exact path) and hand the token back via
    /// [`FastpathEngine::finish_record`] *before* `end_region`.
    Record(RecordToken),
    /// Preconditions failed; run the exact path, nothing to report back.
    Skip,
}

/// Entry snapshot carried from `begin_region_fastpath` to `finish_record`.
pub struct RecordToken {
    label: String,
    /// `(vpage, frame)` of every proof page at entry.
    frames: Vec<(u64, FrameId)>,
    entry_stats: MachineStats,
    entry_clock_bits: u64,
    /// [`Directory::total_writes`] at region entry, *before* the hitters'
    /// bumps. The exit delta must equal the full team's claimed writes —
    /// an O(1) aggregate check in place of scanning the proof footprint.
    /// Per-line entry versions are not stored: validation makes them
    /// recoverable as `current − claimed` (see `diff_level`).
    entry_dir_writes: u64,
    /// [`RefCounters::total_recorded`] after the hitters' bulk adds; the
    /// exit delta must equal the live threads' logged accesses.
    entry_accesses: u64,
    /// Debug builds only (empty in release): per-proof-line entry versions
    /// and per-(frame, node) counter totals, for the exhaustive footprint
    /// re-validation backing the aggregate checks above.
    key_dir: Vec<u32>,
    entry_counters: Vec<u64>,
    live: Vec<LiveCpu>,
    replayed: Vec<CpuId>,
}

impl RecordToken {
    /// CPUs whose memos were applied; the caller must suppress exactly
    /// these for the region body and unsuppress them before `finish_record`.
    pub fn replayed_cpus(&self) -> &[CpuId] {
        &self.replayed
    }
}

/// Entry scalars of one live (recording) team CPU; the cache pre-images come
/// from the machine's copy-on-write recording log.
struct LiveCpu {
    thread: usize,
    cpu: CpuId,
    l1_tick: u64,
    l2_tick: u64,
    /// Entry values of the five integer `CpuStats` fields.
    stats: [u64; 5],
}

/// Per-set key: the touched set indices and their normalized entry states
/// (`assoc × 2` words per set — `(class, rank<<1|fresh)` per way — in
/// `sets` order, which is sorted).
struct LevelKey {
    sets: Vec<u32>,
    key: Vec<u64>,
}

/// One CPU's memoized region delta, keyed on the state it can observe.
struct CpuMemo {
    l1: LevelKey,
    l2: LevelKey,
    /// Positions (into `proof.pages`) of pages this CPU reached memory on,
    /// with the frame each was in at record time.
    page_idx: Vec<u32>,
    frames: Vec<FrameId>,
    /// Deltas of the five integer `CpuStats` fields.
    stats: [u64; 5],
    l1_fix: CacheFix,
    l2_fix: CacheFix,
    /// Reference-counter increments at this CPU's node, per frame.
    counter_adds: Vec<(FrameId, u64)>,
    /// Exit region account (folded by `end_region`).
    account: CpuRegionAccount,
    last_used: u64,
}

/// How to rebuild one cache's touched sets at region exit.
#[derive(Default)]
struct CacheFix {
    tick_delta: u64,
    /// `(set, entry LRU rank, new tag, stamp offset from entry tick)`,
    /// sorted by set. The target way is addressed by its *rank at region
    /// entry*, not its index: the simulator's per-set behaviour is invariant
    /// under way permutation (probes scan all ways; victim selection goes by
    /// stamp), so keys are canonicalized to rank order and a memo recorded
    /// against one way layout replays onto any rank-equivalent layout — the
    /// fix lands on the live way holding the same rank. Stamp offset 0 means
    /// "keep the way's current stamp" (version-only refresh); real restamps
    /// always have offset ≥ 1 because new stamps come from ticks issued
    /// after entry. The new version is *not* stored: it is read from the
    /// directory at apply time (after the bulk bumps), which is exactly
    /// where line-by-line execution gets it.
    fixes: Vec<(u32, u8, u64, u64)>,
}

/// Per-label pool: the proof identity it was built for, per-thread write
/// claims, and one memo slot per team thread.
struct Pool {
    lines: Vec<u64>,
    line_writes: Vec<(u64, u32, u32)>,
    threads: usize,
    /// Dense proof-line membership bitmap (bit `line & 63` of word
    /// `line >> 6`) — match-time tag classification in O(1) instead of a
    /// binary search over the (possibly huge) footprint.
    line_bit: Vec<u64>,
    /// `(line, count)` write claims indexed by thread.
    writes_by_thread: Vec<Vec<(u64, u32)>>,
    /// Sum of all claimed write counts — the full team's directory traffic
    /// per region, validated against [`Directory::total_writes`] in O(1).
    claimed_writes: u64,
    /// Indexed by thread; holds that thread's bound CPU and its variants.
    slots: Vec<CpuSlot>,
}

struct CpuSlot {
    cpu: CpuId,
    variants: Vec<CpuMemo>,
}

impl Pool {
    fn new(proof: &PhaseProof) -> Self {
        let mut writes_by_thread = vec![Vec::new(); proof.threads];
        for &(line, count, writer) in &proof.line_writes {
            writes_by_thread[writer as usize].push((line, count));
        }
        let words = proof.lines.last().map_or(0, |&l| (l >> 6) as usize + 1);
        let mut line_bit = vec![0u64; words];
        for &l in &proof.lines {
            line_bit[(l >> 6) as usize] |= 1 << (l & 63);
        }
        Self {
            lines: proof.lines.clone(),
            line_writes: proof.line_writes.clone(),
            threads: proof.threads,
            line_bit,
            writes_by_thread,
            claimed_writes: proof
                .line_writes
                .iter()
                .map(|&(_, c, _)| u64::from(c))
                .sum(),
            slots: Vec::new(),
        }
    }

    /// O(1) proof-line membership.
    #[inline]
    fn is_line(&self, tag: u64) -> bool {
        self.line_bit
            .get((tag >> 6) as usize)
            .is_some_and(|w| w >> (tag & 63) & 1 != 0)
    }

    /// Realign the per-thread slots with the current binding; a rebound
    /// thread drops its variants (they key another CPU's caches).
    fn align_slots(&mut self, binding: &[CpuId]) {
        if self.slots.len() != binding.len() {
            self.slots = binding
                .iter()
                .map(|&cpu| CpuSlot {
                    cpu,
                    variants: Vec::new(),
                })
                .collect();
            return;
        }
        for (slot, &cpu) in self.slots.iter_mut().zip(binding) {
            if slot.cpu != cpu {
                slot.cpu = cpu;
                slot.variants.clear();
            }
        }
    }
}

/// The memoization engine. One per `omp` runtime (it is tied to one machine's
/// geometry through its memos).
#[derive(Default)]
pub struct FastpathEngine {
    pools: HashMap<String, Pool>,
    use_clock: u64,
    stats: FastpathStats,
}

impl FastpathEngine {
    /// Fresh engine with empty pools.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine counters so far.
    pub fn stats(&self) -> FastpathStats {
        self.stats
    }

    /// Consult the engine for a region about to run under `proof` on the
    /// team `binding` (CPU of thread 0, 1, …). Must be called between
    /// `begin_region` and the region body. See [`FastpathOutcome`] for the
    /// caller's obligations.
    pub fn begin_region_fastpath(
        &mut self,
        m: &mut Machine,
        proof: &PhaseProof,
        binding: &[CpuId],
    ) -> FastpathOutcome {
        let _hp = hostprof::span_hot("ccnuma.fastpath");
        if binding.len() != proof.threads
            || !m.replicas.is_empty()
            || m.trace_mut().is_active()
            || m.cpus[0].l1.assoc() > MAX_ASSOC
            || m.cpus[0].l2.assoc() > MAX_ASSOC
        {
            self.stats.rejects += 1;
            return FastpathOutcome::Skip;
        }
        // Every proof page must already be mapped (a fault mid-region would
        // consult the placement policy, which the replay could not reproduce).
        let mut frames = Vec::with_capacity(proof.pages.len());
        for &vp in &proof.pages {
            match m.page_table.get(vp as usize).copied().flatten() {
                Some(f) => frames.push((vp, f)),
                None => {
                    self.stats.rejects += 1;
                    return FastpathOutcome::Skip;
                }
            }
        }
        let pool = self
            .pools
            .entry(proof.label.clone())
            .or_insert_with(|| Pool::new(proof));
        if pool.threads != proof.threads
            || pool.lines != proof.lines
            || pool.line_writes != proof.line_writes
        {
            // Same label, different footprint (e.g. team resize): start over.
            *pool = Pool::new(proof);
        }
        pool.align_slots(binding);
        self.use_clock += 1;
        let now = self.use_clock;

        // Per-CPU lookup — all *before* any effect is applied, so every
        // check reads true region-entry state.
        let mut hits: Vec<Option<usize>> = Vec::with_capacity(binding.len());
        let mut all_hit = true;
        for t in 0..binding.len() {
            let hit = {
                let slot = &pool.slots[t];
                slot.variants
                    .iter()
                    .position(|v| memo_matches(m, slot.cpu, v, pool, &frames))
            };
            // Keep variants in MRU order: the steady-state variant ends up in
            // front, so lookups stop scanning stale variants (whose keys can
            // share long prefixes with the live state before diverging).
            let hit = hit.map(|i| {
                if i != 0 {
                    pool.slots[t].variants.swap(0, i);
                }
                0
            });
            all_hit &= hit.is_some();
            hits.push(hit);
        }

        if all_hit {
            apply_hitters(m, pool, &hits, now);
            self.stats.cpu_replays += binding.len() as u64;
            self.stats.replays += 1;
            return FastpathOutcome::Replay;
        }
        self.stats.misses += 1;
        // Aggregate snapshot *before* the hitters' bumps; debug builds also
        // take the full per-line snapshot the exhaustive check diffs against.
        let entry_dir_writes = m.directory.total_writes();
        let key_dir: Vec<u32> = if cfg!(debug_assertions) {
            proof
                .lines
                .iter()
                .map(|&l| m.directory.version(l))
                .collect()
        } else {
            Vec::new()
        };
        let replayed = apply_hitters(m, pool, &hits, now);
        self.stats.cpu_replays += replayed.len() as u64;
        if std::env::var_os("DDNOMP_FASTPATH_DEBUG").is_some() {
            for (t, hit) in hits.iter().enumerate() {
                if hit.is_none() {
                    let slot = &pool.slots[t];
                    let why: Vec<String> = slot
                        .variants
                        .iter()
                        .map(|v| miss_reason(m, slot.cpu, v, pool, &frames))
                        .collect();
                    eprintln!(
                        "fastpath miss {}: thread {t} (cpu {}) vs {:?}",
                        proof.label, slot.cpu, why,
                    );
                }
            }
        }

        // Counter snapshots *after* the applied effects so the exit diff
        // isolates the live threads (whose accesses the mem log attributes).
        let entry_accesses = m.counters.total_recorded();
        let mut entry_counters = Vec::new();
        if cfg!(debug_assertions) {
            let nodes = m.config.topology.nodes();
            entry_counters.reserve(frames.len() * nodes);
            for &(_, frame) in &frames {
                for node in 0..nodes {
                    entry_counters.push(m.counters.get(frame, node));
                }
            }
        }
        let mut live = Vec::new();
        for (t, hit) in hits.iter().enumerate() {
            if hit.is_some() {
                continue;
            }
            let cpu = binding[t];
            let ctx = &m.cpus[cpu];
            live.push(LiveCpu {
                thread: t,
                cpu,
                l1_tick: ctx.l1.tick(),
                l2_tick: ctx.l2.tick(),
                stats: int_stats(m, cpu),
            });
        }
        m.fp_begin_recording();
        FastpathOutcome::Record(RecordToken {
            label: proof.label.clone(),
            frames,
            entry_stats: m.stats,
            entry_clock_bits: m.clock.now_ns().to_bits(),
            entry_dir_writes,
            entry_accesses,
            key_dir,
            entry_counters,
            live,
            replayed,
        })
    }

    /// Finish a recording: validate that the region behaved exactly as the
    /// proof claims and store one memo per live CPU. Must be called *before*
    /// `end_region` (the entry/exit diff needs the still-open region state).
    pub fn finish_record(&mut self, m: &mut Machine, proof: &PhaseProof, token: RecordToken) {
        let _hp = hostprof::span_hot("ccnuma.fastpath");
        debug_assert_eq!(proof.label, token.label);
        let rec = m.fp_take_recording().unwrap_or_default();
        let Some(pool) = self.pools.get_mut(&token.label) else {
            self.stats.rejects += 1;
            return;
        };
        self.use_clock += 1;
        let Some(memos) = build_memos(m, proof, pool, &token, &rec, self.use_clock) else {
            self.stats.rejects += 1;
            return;
        };
        let recorded = memos.len() as u64;
        for (thread, memo) in memos {
            let variants = &mut pool.slots[thread].variants;
            if variants.len() >= MAX_VARIANTS {
                let lru = variants
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, v)| v.last_used)
                    .map(|(i, _)| i)
                    .expect("MAX_VARIANTS > 0");
                variants[lru] = memo;
            } else {
                variants.push(memo);
            }
        }
        self.stats.records += 1;
        self.stats.cpu_records += recorded;
    }
}

/// Apply every hitter's memo: directory bumps for all of them first (cache
/// fix-ups read the post-region versions), then per-CPU state. A live thread
/// cannot observe any of this by eligibility. Returns the replayed CPUs.
fn apply_hitters(m: &mut Machine, pool: &mut Pool, hits: &[Option<usize>], now: u64) -> Vec<CpuId> {
    for (t, hit) in hits.iter().enumerate() {
        if hit.is_some() {
            for &(line, k) in &pool.writes_by_thread[t] {
                m.directory.bump(line, k);
            }
        }
    }
    let mut replayed = Vec::new();
    for (t, hit) in hits.iter().enumerate() {
        let Some(vi) = *hit else { continue };
        let slot = &mut pool.slots[t];
        slot.variants[vi].last_used = now;
        apply_cpu(m, slot.cpu, &slot.variants[vi]);
        replayed.push(slot.cpu);
    }
    replayed
}

/// LRU rank of each way by `(stamp, way index)` — the exact order the fill
/// victim scan resolves ties in (strict `<`, first index wins). Valid ways
/// have unique stamps (they come from unique ticks), so ranks identify ways
/// unambiguously; empty ways tie on stamp 0 and rank in index order, which
/// is also the order fills consume them in.
#[inline]
fn way_ranks(ways: &[(u64, u32, u64)]) -> [u8; MAX_ASSOC] {
    let assoc = ways.len();
    let mut rank = [0u8; MAX_ASSOC];
    for w in 0..assoc {
        for o in 0..assoc {
            if ways[o].2 < ways[w].2 || (ways[o].2 == ways[w].2 && o < w) {
                rank[w] += 1;
            }
        }
    }
    rank
}

/// Normalize one set's raw ways into key words: `(class, fresh)` per way,
/// written in **LRU rank order** — the key is therefore invariant under way
/// permutation, which the simulator's per-set behaviour also is (probes scan
/// every way for a tag match; fills pick victims by stamp, reusing empties
/// in rank order). `classify` maps a *valid* tag and its cached version to
/// the `(class, fresh)` pair — proof lines keep their tag and a freshness
/// bit judged against the region-entry directory, everything else collapses
/// to [`KEY_OTHER`].
/// Permutation-invariance has two index-ordered exceptions, both requiring
/// states only invalidations (page migrations) can produce. A probe returns
/// the *first* way whose tag matches, so duplicate tags (a stale copy
/// shadowed by a refill into an empty way) make the outcome depend on way
/// order. And a fill reuses the first same-tag-**or**-empty way by index, so
/// a set holding both an empty way and a proof line resolves the choice by
/// position. For such sets the key also pins each way's physical index, so
/// only a layout-identical live set matches.
#[inline]
fn needs_index_pin(ways: &[(u64, u32, u64)], classes: &[u64; MAX_ASSOC]) -> bool {
    let assoc = ways.len();
    let mut empty = false;
    let mut proof = false;
    for w in 0..assoc {
        empty |= classes[w] == KEY_EMPTY;
        proof |= classes[w] < KEY_OTHER;
        for o in w + 1..assoc {
            if ways[w].0 != INVALID_TAG && ways[w].0 == ways[o].0 {
                return true;
            }
        }
    }
    empty && proof
}

#[inline]
fn norm_ways(
    ways: &[(u64, u32, u64)],
    mut classify: impl FnMut(u64, u32) -> (u64, u64),
    out: &mut [u64],
) {
    let assoc = ways.len();
    let ranks = way_ranks(ways);
    let mut classes = [0u64; MAX_ASSOC];
    let mut freshes = [0u64; MAX_ASSOC];
    for w in 0..assoc {
        let (tag, version, _) = ways[w];
        let (class, fresh) = if tag == INVALID_TAG {
            (KEY_EMPTY, 0)
        } else {
            classify(tag, version)
        };
        classes[w] = class;
        freshes[w] = fresh;
    }
    let pin = needs_index_pin(ways, &classes);
    for w in 0..assoc {
        let r = ranks[w] as usize;
        out[r * 2] = classes[w];
        out[r * 2 + 1] = freshes[w] | if pin { (w as u64 + 1) << 8 } else { 0 };
    }
}

/// Does one cache level of the live machine match a memo's key?
fn level_matches(cache: &SetAssocCache, lk: &LevelKey, pool: &Pool, dir: &Directory) -> bool {
    let assoc = cache.assoc();
    let w2 = assoc * 2;
    let mut ways = [(0u64, 0u32, 0u64); MAX_ASSOC];
    let mut out = [0u64; 2 * MAX_ASSOC];
    lk.sets.iter().enumerate().all(|(i, &set)| {
        let base = set as usize * assoc;
        for (w, slot) in ways[..assoc].iter_mut().enumerate() {
            *slot = cache.way(base + w);
        }
        norm_ways(
            &ways[..assoc],
            |t, v| {
                if pool.is_line(t) {
                    (t, u64::from(v == dir.version(t)))
                } else {
                    (KEY_OTHER, 0)
                }
            },
            &mut out,
        );
        out[..w2] == lk.key[i * w2..][..w2]
    })
}

/// Does `memo` match the current entry state? Checks only what the memoized
/// walk can observe: its touched sets and its accessed frames.
fn memo_matches(
    m: &Machine,
    cpu: CpuId,
    memo: &CpuMemo,
    pool: &Pool,
    frames: &[(u64, FrameId)],
) -> bool {
    memo.page_idx
        .iter()
        .zip(&memo.frames)
        .all(|(&pi, &f)| frames[pi as usize].1 == f)
        && level_matches(&m.cpus[cpu].l1, &memo.l1, pool, &m.directory)
        && level_matches(&m.cpus[cpu].l2, &memo.l2, pool, &m.directory)
}

/// Debug-only: explain why a memo did not match (first failing component).
fn miss_reason(
    m: &Machine,
    cpu: CpuId,
    memo: &CpuMemo,
    pool: &Pool,
    frames: &[(u64, FrameId)],
) -> String {
    for (&pi, &f) in memo.page_idx.iter().zip(&memo.frames) {
        if frames[pi as usize].1 != f {
            return format!("frame page{pi} {f}->{}", frames[pi as usize].1);
        }
    }
    let ctx = &m.cpus[cpu];
    for (level, cache, lk) in [("l1", &ctx.l1, &memo.l1), ("l2", &ctx.l2, &memo.l2)] {
        let assoc = cache.assoc();
        let w2 = assoc * 2;
        let mut ways = [(0u64, 0u32, 0u64); MAX_ASSOC];
        let mut out = [0u64; 2 * MAX_ASSOC];
        for (i, &set) in lk.sets.iter().enumerate() {
            let base = set as usize * assoc;
            for (w, slot) in ways[..assoc].iter_mut().enumerate() {
                *slot = cache.way(base + w);
            }
            norm_ways(
                &ways[..assoc],
                |t, v| {
                    if pool.is_line(t) {
                        (t, u64::from(v == m.directory.version(t)))
                    } else {
                        (KEY_OTHER, 0)
                    }
                },
                &mut out,
            );
            let rec = &lk.key[i * w2..][..w2];
            if out[..w2] != *rec {
                return format!(
                    "{level} set {set} ({}/{} touched) cur {:?} rec {rec:?}",
                    i,
                    lk.sets.len(),
                    &out[..w2],
                );
            }
        }
    }
    "match?!".into()
}

/// Apply one CPU's memo: caches, integer stats, counters, region account.
/// (Directory bumps are applied by the caller for all hitters first.)
fn apply_cpu(m: &mut Machine, cpu: CpuId, memo: &CpuMemo) {
    let node = m.cpus[cpu].node;
    for &(frame, k) in &memo.counter_adds {
        m.counters.bulk_add(frame, node, k);
    }
    let ctx = &mut m.cpus[cpu];
    apply_cache(&mut ctx.l1, &memo.l1_fix, &m.directory);
    apply_cache(&mut ctx.l2, &memo.l2_fix, &m.directory);
    ctx.stats.l1_hits += memo.stats[0];
    ctx.stats.l2_hits += memo.stats[1];
    ctx.stats.mem_local += memo.stats[2];
    ctx.stats.mem_remote += memo.stats[3];
    ctx.stats.coherence_misses += memo.stats[4];
    ctx.account.clone_from(&memo.account);
}

fn int_stats(m: &Machine, cpu: CpuId) -> [u64; 5] {
    let s = &m.cpus[cpu].stats;
    [
        s.l1_hits,
        s.l2_hits,
        s.mem_local,
        s.mem_remote,
        s.coherence_misses,
    ]
}

/// Diff exit state against the entry token; `None` discards the recording.
fn build_memos(
    m: &Machine,
    proof: &PhaseProof,
    pool: &Pool,
    token: &RecordToken,
    rec: &FpRecording,
    now: u64,
) -> Option<Vec<(usize, CpuMemo)>> {
    // Environmental checks first (silent discard): these can fail without the
    // proof being wrong — e.g. an explicit mid-region page operation.
    if m.stats != token.entry_stats
        || m.clock.now_ns().to_bits() != token.entry_clock_bits
        || !m.replicas.is_empty()
    {
        return None;
    }
    for &(vp, f) in &token.frames {
        if m.page_table[vp as usize] != Some(f) {
            return None;
        }
    }
    // Contract checks: a failure here means the PhaseProof lied about the
    // region's footprint. The always-on checks are O(1) aggregates plus
    // O(touched) membership; debug builds back them with exhaustive
    // footprint scans (the `debug_assert` re-validation of the contract).
    //
    // Relative to the pre-apply snapshot, the directory's global write
    // total must have moved by exactly the full team's claims — the
    // hitters' bumps were applied verbatim, so any disagreement (an extra
    // write anywhere in the machine, or a missing one) is the live
    // threads'. This also pins every proof line's entry version to
    // `current − claimed`, which `diff_level` relies on to rebuild
    // record-time key freshness without a per-line snapshot.
    let dir_delta = m
        .directory
        .total_writes()
        .wrapping_sub(token.entry_dir_writes);
    if dir_delta != pool.claimed_writes {
        debug_assert!(
            false,
            "PhaseProof {:?}: region wrote {dir_delta} lines, proof claims {}",
            proof.label, pool.claimed_writes,
        );
        return None;
    }
    if cfg!(debug_assertions) {
        for (i, &line) in proof.lines.iter().enumerate() {
            let delta = m.directory.version(line).wrapping_sub(token.key_dir[i]);
            let claimed = proof.writes_of(line);
            debug_assert!(
                delta == claimed,
                "PhaseProof {:?}: line {line} saw {delta} writes, proof claims {claimed}",
                proof.label,
            );
        }
    }
    // The counters' global total must have moved by exactly the accesses
    // the machine logged for the live threads, and every logged access must
    // land inside the proof's page footprint.
    let acc_delta = m
        .counters
        .total_recorded()
        .wrapping_sub(token.entry_accesses);
    if acc_delta != rec.mem_log.len() as u64 {
        debug_assert!(
            false,
            "PhaseProof {:?}: counters moved {acc_delta}, log has {}",
            proof.label,
            rec.mem_log.len(),
        );
        return None;
    }
    let mut frame_page: HashMap<FrameId, u32> = HashMap::with_capacity(token.frames.len());
    for (pi, &(_, frame)) in token.frames.iter().enumerate() {
        frame_page.insert(frame, pi as u32);
    }
    for &(_, frame) in &rec.mem_log {
        if !frame_page.contains_key(&frame) {
            debug_assert!(
                false,
                "PhaseProof {:?}: memory access outside the proof footprint (frame {frame})",
                proof.label,
            );
            return None;
        }
    }
    if cfg!(debug_assertions) {
        // Exhaustive per-(frame, node) re-validation of the aggregate check.
        let nodes = m.config.topology.nodes();
        let mut logged: BTreeMap<(FrameId, usize), u64> = BTreeMap::new();
        for &(cpu, frame) in &rec.mem_log {
            *logged.entry((frame, m.cpus[cpu].node)).or_insert(0) += 1;
        }
        for (fi, &(_, frame)) in token.frames.iter().enumerate() {
            for node in 0..nodes {
                let delta = m
                    .counters
                    .get(frame, node)
                    .wrapping_sub(token.entry_counters[fi * nodes + node]);
                debug_assert!(
                    delta == logged.get(&(frame, node)).copied().unwrap_or(0),
                    "PhaseProof {:?}: counter ({frame},{node}) moved {delta}, log disagrees",
                    proof.label,
                );
            }
        }
    }
    // Group the pre-image log per (cpu, level), sorted by set — the memo's
    // touched-set lists are canonical regardless of probe order.
    let mut pre: HashMap<(CpuId, u8), Vec<(u32, usize)>> = HashMap::new();
    let mut cursor = 0usize;
    for &(cpu, level, set) in &rec.sets {
        let cpu = cpu as usize;
        let assoc = if level == 0 {
            m.cpus[cpu].l1.assoc()
        } else {
            m.cpus[cpu].l2.assoc()
        };
        pre.entry((cpu, level)).or_default().push((set, cursor));
        cursor += assoc;
    }
    if cursor != rec.ways.len() {
        debug_assert!(false, "pre-image log length mismatch");
        return None;
    }
    for entries in pre.values_mut() {
        entries.sort_unstable_by_key(|&(set, _)| set);
    }
    let empty: Vec<(u32, usize)> = Vec::new();
    let mut memos = Vec::with_capacity(token.live.len());
    for lc in &token.live {
        debug_assert_eq!(pool.slots[lc.thread].cpu, lc.cpu);
        let exit = int_stats(m, lc.cpu);
        let mut stats = [0u64; 5];
        for k in 0..5 {
            stats[k] = exit[k].checked_sub(lc.stats[k])?;
        }
        let ctx = &m.cpus[lc.cpu];
        let l1_pre = pre.get(&(lc.cpu, 0)).unwrap_or(&empty);
        let l2_pre = pre.get(&(lc.cpu, 1)).unwrap_or(&empty);
        let (l1, l1_fix) = diff_level(
            &ctx.l1, l1_pre, &rec.ways, lc.l1_tick, proof, pool, token, m,
        )?;
        let (l2, l2_fix) = diff_level(
            &ctx.l2, l2_pre, &rec.ways, lc.l2_tick, proof, pool, token, m,
        )?;
        let mut adds: BTreeMap<FrameId, u64> = BTreeMap::new();
        for &(cpu, frame) in &rec.mem_log {
            if cpu == lc.cpu {
                *adds.entry(frame).or_insert(0) += 1;
            }
        }
        let mut page_idx = Vec::with_capacity(adds.len());
        let mut frames = Vec::with_capacity(adds.len());
        let mut counter_adds = Vec::with_capacity(adds.len());
        for (frame, count) in adds {
            page_idx.push(frame_page[&frame]);
            frames.push(frame);
            counter_adds.push((frame, count));
        }
        memos.push((
            lc.thread,
            CpuMemo {
                l1,
                l2,
                page_idx,
                frames,
                stats,
                l1_fix,
                l2_fix,
                counter_adds,
                account: ctx.account.clone(),
                last_used: now,
            },
        ));
    }
    Some(memos)
}

/// Build one level's key from the logged pre-images and diff its exit state
/// into a [`CacheFix`]. `entries` is `(set, offset into pre-image ways)`,
/// sorted by set.
#[allow(clippy::too_many_arguments)]
fn diff_level(
    cache: &SetAssocCache,
    entries: &[(u32, usize)],
    pre_ways: &[(u64, u32, u64)],
    entry_tick: u64,
    proof: &PhaseProof,
    pool: &Pool,
    token: &RecordToken,
    m: &Machine,
) -> Option<(LevelKey, CacheFix)> {
    let assoc = cache.assoc();
    let w2 = assoc * 2;
    let tick_delta = cache.tick().checked_sub(entry_tick)?;
    let mut sets = Vec::with_capacity(entries.len());
    let mut key = Vec::with_capacity(entries.len() * w2);
    let mut out = [0u64; 2 * MAX_ASSOC];
    let mut fixes = Vec::new();
    for &(set, off) in entries {
        let entry_ways = &pre_ways[off..off + assoc];
        sets.push(set);
        // Freshness in the key is judged against the region-entry directory,
        // the same state match-time normalization reads. The entry version
        // is not snapshotted: the aggregate write check above pinned every
        // proof line's delta to its claim, so it is `current − claimed`.
        norm_ways(
            entry_ways,
            |t, v| {
                if pool.is_line(t) {
                    let entry_ver = m.directory.version(t).wrapping_sub(proof.writes_of(t));
                    debug_assert!(
                        token.key_dir.is_empty()
                            || token.key_dir[proof.lines.binary_search(&t).unwrap()] == entry_ver,
                        "arithmetic entry version disagrees with the snapshot"
                    );
                    (t, u64::from(v == entry_ver))
                } else {
                    (KEY_OTHER, 0)
                }
            },
            &mut out,
        );
        key.extend_from_slice(&out[..w2]);
        let entry_ranks = way_ranks(entry_ways);
        let base = set as usize * assoc;
        for w in 0..assoc {
            let (t, v, s) = cache.way(base + w);
            let (et, ev, es) = entry_ways[w];
            if t == et && v == ev && s == es {
                continue;
            }
            // Every way a proven region modifies must (a) hold a proof line —
            // the region fills only lines it accesses; (b) at the directory's
            // current version — fills take the current version and a writer
            // refreshes its own copy, while eligibility forbids another CPU
            // staling it; (c) be stamped after region entry, or not restamped
            // at all.
            if !pool.is_line(t) || v != m.directory.version(t) {
                debug_assert!(
                    false,
                    "PhaseProof {:?}: modified way holds line {t} v{v} (directory v{})",
                    proof.label,
                    m.directory.version(t)
                );
                return None;
            }
            let stamp_off = if s == es {
                0
            } else if s > entry_tick {
                s - entry_tick
            } else {
                debug_assert!(
                    false,
                    "PhaseProof {:?}: exit stamp predates entry",
                    proof.label
                );
                return None;
            };
            fixes.push((set, entry_ranks[w], t, stamp_off));
        }
    }
    Some((LevelKey { sets, key }, CacheFix { tick_delta, fixes }))
}

fn apply_cache(cache: &mut SetAssocCache, fix: &CacheFix, dir: &Directory) {
    let t0 = cache.tick();
    let assoc = cache.assoc();
    let mut ways = [(0u64, 0u32, 0u64); MAX_ASSOC];
    let mut i = 0;
    // Fixes are grouped by set; resolve each set's entry-rank → way-index
    // map from its (still untouched) live state, then land that set's fixes.
    while i < fix.fixes.len() {
        let set = fix.fixes[i].0;
        let base = set as usize * assoc;
        for (w, slot) in ways[..assoc].iter_mut().enumerate() {
            *slot = cache.way(base + w);
        }
        let ranks = way_ranks(&ways[..assoc]);
        let mut idx_of = [0usize; MAX_ASSOC];
        for w in 0..assoc {
            idx_of[ranks[w] as usize] = w;
        }
        while i < fix.fixes.len() && fix.fixes[i].0 == set {
            let (_, rank, tag, off) = fix.fixes[i];
            let idx = base + idx_of[rank as usize];
            let stamp = if off == 0 { cache.way(idx).2 } else { t0 + off };
            cache.set_way(idx, tag, dir.version(tag), stamp);
            i += 1;
        }
    }
    cache.set_tick(t0 + fix.tick_delta);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::AccessKind::{Read, Write};
    use crate::machine::MachineConfig;
    use crate::PAGE_SIZE;

    fn proof() -> PhaseProof {
        let mut lines: Vec<u64> = (0..8).collect();
        lines.extend(128..132); // page 1's first four lines
        PhaseProof::new("test/loop".into(), 2, lines, vec![(0, 2, 0)])
    }

    fn workload(m: &mut Machine) {
        for i in 0..8 {
            m.touch(0, i * 128, Read);
        }
        m.touch(0, 0, Write);
        m.touch(0, 0, Write);
        for i in 0..4 {
            m.touch(1, PAGE_SIZE + i * 128, Read);
        }
        m.compute(0, 100);
    }

    fn prepared() -> Machine {
        let mut m = Machine::new(MachineConfig::tiny_test());
        m.map_page(0, 0).unwrap();
        m.map_page(1, 0).unwrap();
        m
    }

    fn run_region(m: &mut Machine, engine: Option<&mut FastpathEngine>, p: &PhaseProof) {
        m.begin_region();
        match engine {
            None => workload(m),
            Some(e) => match e.begin_region_fastpath(m, p, &[0, 1]) {
                FastpathOutcome::Replay => {} // body suppressed: effects already applied
                FastpathOutcome::Record(tok) => {
                    for &c in tok.replayed_cpus().to_vec().iter() {
                        m.set_fastpath_suppressed_cpu(c, true);
                    }
                    workload(m);
                    for &c in tok.replayed_cpus().to_vec().iter() {
                        m.set_fastpath_suppressed_cpu(c, false);
                    }
                    e.finish_record(m, p, tok);
                }
                FastpathOutcome::Skip => workload(m),
            },
        }
        m.end_region();
    }

    /// Full observable state: clock bits, machine stats, per-CPU stats,
    /// counters of every mapped frame, page version sums.
    fn fingerprint(m: &Machine) -> (u64, String) {
        let mut counters = Vec::new();
        for (_, f) in m.mapped_pages() {
            for n in 0..m.topology().nodes() {
                counters.push(m.counters().get(f, n));
            }
        }
        let per_cpu: Vec<_> = (0..m.cpus()).map(|c| *m.cpu_stats(c)).collect();
        (
            m.clock().now_ns().to_bits(),
            format!(
                "{:?} {:?} {:?} {} {}",
                m.stats(),
                per_cpu,
                counters,
                m.page_version_sum(0),
                m.page_version_sum(1)
            ),
        )
    }

    #[test]
    fn replayed_regions_are_bit_identical_to_reference() {
        let p = proof();
        let mut reference = prepared();
        let mut fast = prepared();
        let mut engine = FastpathEngine::new();
        for _ in 0..4 {
            run_region(&mut reference, None, &p);
            run_region(&mut fast, Some(&mut engine), &p);
            assert_eq!(fingerprint(&reference), fingerprint(&fast));
        }
        // Iteration 1 records the cold variant, iteration 2 the steady-state
        // variant; iterations 3 and 4 replay it wholesale.
        let s = engine.stats();
        assert_eq!(s.records, 2, "{s:?}");
        assert_eq!(s.replays, 2, "{s:?}");
        assert_eq!(s.rejects, 0, "{s:?}");
        assert_eq!(s.cpu_records, 4, "{s:?}");
        assert_eq!(s.cpu_replays, 4, "{s:?}");
    }

    #[test]
    fn partial_replay_records_only_the_drifted_cpu() {
        let p = proof();
        let mut reference = prepared();
        let mut fast = prepared();
        let mut engine = FastpathEngine::new();
        // Reach steady state on both machines.
        for _ in 0..3 {
            run_region(&mut reference, None, &p);
            run_region(&mut fast, Some(&mut engine), &p);
        }
        let before = engine.stats();
        assert!(before.replays >= 1, "{before:?}");
        // Perturb CPU 0's cache outside any region (a non-proof line on a
        // mapped page): its key drifts, CPU 1's does not.
        reference.touch(0, 120 * 128, Read);
        fast.touch(0, 120 * 128, Read);
        run_region(&mut reference, None, &p);
        run_region(&mut fast, Some(&mut engine), &p);
        assert_eq!(fingerprint(&reference), fingerprint(&fast));
        let s = engine.stats();
        assert_eq!(s.misses, before.misses + 1, "CPU 0 must miss: {s:?}");
        assert_eq!(
            s.cpu_replays,
            before.cpu_replays + 1,
            "CPU 1 must still replay through CPU 0's drift: {s:?}"
        );
        assert_eq!(s.cpu_records, before.cpu_records + 1, "{s:?}");
        // The re-recorded variant serves the perturbed state from now on.
        reference.touch(0, 120 * 128, Read);
        fast.touch(0, 120 * 128, Read);
        run_region(&mut reference, None, &p);
        run_region(&mut fast, Some(&mut engine), &p);
        assert_eq!(fingerprint(&reference), fingerprint(&fast));
        assert_eq!(engine.stats().replays, s.replays + 1, "full replay resumes");
    }

    #[test]
    fn suppression_makes_touch_and_compute_no_ops() {
        let mut m = prepared();
        m.begin_region();
        m.set_fastpath_suppressed(true);
        assert!(m.fastpath_suppressed());
        assert_eq!(m.touch(0, 0, Read), 0.0);
        m.compute(0, 100);
        m.set_fastpath_suppressed(false);
        m.end_region();
        let agg = m.aggregate_cpu_stats();
        assert_eq!(
            agg.l1_hits + agg.l2_hits + agg.mem_local + agg.mem_remote,
            0
        );
        assert_eq!(agg.compute_ns, 0.0);
        assert_eq!(m.page_version_sum(0), 0);
    }

    #[test]
    fn preconditions_reject() {
        let p = proof();
        let mut engine = FastpathEngine::new();

        // Unmapped proof page.
        let mut m = Machine::new(MachineConfig::tiny_test());
        m.begin_region();
        assert!(matches!(
            engine.begin_region_fastpath(&mut m, &p, &[0, 1]),
            FastpathOutcome::Skip
        ));
        m.end_region();

        // Replicas present.
        let mut m = prepared();
        m.replicate_page(0, 1).unwrap();
        m.begin_region();
        assert!(matches!(
            engine.begin_region_fastpath(&mut m, &p, &[0, 1]),
            FastpathOutcome::Skip
        ));
        m.end_region();

        // Team-size mismatch.
        let mut m = prepared();
        m.begin_region();
        assert!(matches!(
            engine.begin_region_fastpath(&mut m, &p, &[0]),
            FastpathOutcome::Skip
        ));
        m.end_region();

        assert_eq!(engine.stats().rejects, 3);
        assert_eq!(engine.stats().records, 0);
    }

    #[test]
    fn recording_discarded_when_region_has_side_effects() {
        let p = proof();
        let mut engine = FastpathEngine::new();
        let mut m = prepared();
        m.begin_region();
        let FastpathOutcome::Record(tok) = engine.begin_region_fastpath(&mut m, &p, &[0, 1]) else {
            panic!("expected Record on first sight");
        };
        workload(&mut m);
        // An explicit page operation mid-region: environmental state moved,
        // so the memos must be dropped (silently, even in debug builds).
        m.migrate_page(1, 3).unwrap();
        engine.finish_record(&mut m, &p, tok);
        m.end_region();
        let s = engine.stats();
        assert_eq!(s.records, 0, "{s:?}");
        assert_eq!(s.rejects, 1, "{s:?}");
    }
}
