//! Per-processor simulation state.
//!
//! A [`CpuContext`] owns the private caches of one simulated R10000, its
//! event statistics, and the per-region accounting consumed by the
//! contention model. The memory-access logic itself lives in
//! [`crate::Machine::touch`], which needs simultaneous access to the CPU and
//! to the machine-shared structures (directory, counters, page table).

use crate::cache::{CacheConfig, SetAssocCache};
use crate::contention::CpuRegionAccount;
use crate::stats::CpuStats;
use crate::topology::NodeId;

/// Identifier of a simulated processor.
pub type CpuId = usize;

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store (bumps the line's coherence version).
    Write,
}

/// One simulated processor: private caches plus accounting.
#[derive(Debug)]
pub struct CpuContext {
    /// This CPU's id.
    pub id: CpuId,
    /// The NUMA node hosting this CPU.
    pub node: NodeId,
    /// Private L1 data cache.
    pub l1: SetAssocCache,
    /// Private unified L2 cache.
    pub l2: SetAssocCache,
    /// Cumulative event statistics (whole run).
    pub stats: CpuStats,
    /// Accounting for the parallel region currently executing.
    pub account: CpuRegionAccount,
}

impl CpuContext {
    /// Build a CPU with the given cache geometries on `node`.
    pub fn new(id: CpuId, node: NodeId, l1: CacheConfig, l2: CacheConfig, nodes: usize) -> Self {
        Self {
            id,
            node,
            l1: SetAssocCache::new(l1),
            l2: SetAssocCache::new(l2),
            stats: CpuStats::default(),
            account: CpuRegionAccount::new(nodes),
        }
    }

    /// Drop all cached lines (e.g. after a context-destroying event).
    pub fn flush_caches(&mut self) {
        self.l1.invalidate_all();
        self.l2.invalidate_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let c = CpuContext::new(3, 1, CacheConfig::origin_l1(), CacheConfig::origin_l2(), 8);
        assert_eq!(c.id, 3);
        assert_eq!(c.node, 1);
        assert_eq!(c.stats, CpuStats::default());
        assert_eq!(c.account.stall_by_node.len(), 8);
    }
}
