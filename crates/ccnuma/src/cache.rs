//! Set-associative cache models for the simulated R10000 hierarchy.
//!
//! Each simulated CPU owns a private L1 (32 KB, 2-way in our model; the real
//! R10000 L1 is 2-way) and a private unified L2 (4 MB, 2-way, 128 B lines).
//! Caches store `(tag, coherence version)` pairs; a hit requires both the tag
//! to match *and* the stored version to equal the line's current version in
//! the global coherence [`crate::Directory`]. A version mismatch is a
//! coherence miss — another CPU wrote the line since we cached it — and is
//! serviced from memory, which is where the Origin2000's per-frame reference
//! counters count it.
//!
//! LRU is exact per set (tiny associativities make this cheap).

use crate::LINE_SHIFT;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// R10000 L1: 32 KB, 2-way (split I/D on the real chip; we model the
    /// data side only, since the simulator only sees data accesses).
    pub fn origin_l1() -> Self {
        Self {
            capacity: 32 * 1024,
            ways: 2,
        }
    }

    /// R10000 board-level L2: 4 MB unified, 2-way.
    pub fn origin_l2() -> Self {
        Self {
            capacity: 4 * 1024 * 1024,
            ways: 2,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        let lines = self.capacity >> LINE_SHIFT;
        assert!(lines >= self.ways, "cache too small for its associativity");
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

pub(crate) const INVALID_TAG: u64 = u64::MAX;

/// One way of one set: the cached line number and the coherence version it
/// was loaded at.
#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    version: u32,
    /// Monotone per-cache LRU stamp; larger = more recently used.
    stamp: u64,
}

impl Way {
    const EMPTY: Way = Way {
        tag: INVALID_TAG,
        version: 0,
        stamp: 0,
    };
}

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Tag present with the current coherence version.
    Hit,
    /// Tag present but the line was written by another CPU since it was
    /// cached (version mismatch) — a coherence miss.
    Stale,
    /// Tag absent.
    Miss,
}

/// A set-associative cache with exact LRU and version-tagged lines.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    ways: Vec<Way>,
    set_mask: u64,
    assoc: usize,
    tick: u64,
}

impl SetAssocCache {
    /// Build an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Self {
            ways: vec![Way::EMPTY; sets * config.ways],
            set_mask: (sets - 1) as u64,
            assoc: config.ways,
            tick: 0,
        }
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line & self.set_mask) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Probe for `line`, expecting coherence version `current_version`.
    /// On a hit, refreshes LRU. On a stale hit, the entry is left in place
    /// (the caller is expected to follow up with [`Self::fill`]).
    #[inline]
    pub fn probe(&mut self, line: u64, current_version: u32) -> Probe {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.tag == line {
                return if w.version == current_version {
                    w.stamp = tick;
                    Probe::Hit
                } else {
                    Probe::Stale
                };
            }
        }
        Probe::Miss
    }

    /// Install `line` at `version`, evicting the LRU way if needed.
    /// Returns the evicted line, if a valid one was displaced.
    #[inline]
    pub fn fill(&mut self, line: u64, version: u32) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        // Reuse an existing entry for this tag (stale refresh) or an empty way.
        let mut victim = range.start;
        let mut victim_stamp = u64::MAX;
        for i in range.clone() {
            let w = &mut self.ways[i];
            if w.tag == line || w.tag == INVALID_TAG {
                let evicted = None; // same tag or empty: nothing displaced
                w.tag = line;
                w.version = version;
                w.stamp = tick;
                return evicted;
            }
            if w.stamp < victim_stamp {
                victim_stamp = w.stamp;
                victim = i;
            }
        }
        let w = &mut self.ways[victim];
        let evicted = Some(w.tag);
        w.tag = line;
        w.version = version;
        w.stamp = tick;
        evicted
    }

    /// Update the stored version of `line` if present (used on writes, which
    /// bump the directory version and must keep the writer's own copy fresh).
    #[inline]
    pub fn refresh_version(&mut self, line: u64, version: u32) {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.tag == line {
                w.version = version;
                return;
            }
        }
    }

    /// Drop every cached line (used when a page migrates and its lines must
    /// not be served from caches holding pre-copy contents — the simulator's
    /// analogue of the TLB/ cache shootdown the paper charges to migration).
    pub fn invalidate_all(&mut self) {
        for w in &mut self.ways {
            *w = Way::EMPTY;
        }
    }

    /// Invalidate one line if present. Returns whether it was present.
    pub fn invalidate_line(&mut self, line: u64) -> bool {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.tag == line {
                *w = Way::EMPTY;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently cached (test/diagnostic helper).
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.tag != INVALID_TAG).count()
    }

    // ---- fast-path introspection (crate-internal) --------------------------
    //
    // The phase fast path (see `crate::fastpath`) snapshots and reconstructs
    // cache state around memoized regions. It needs raw access to ways and
    // the LRU tick; everything stays `pub(crate)` so the public cache model
    // remains probe/fill/invalidate only.

    /// Set-index mask (`sets - 1`).
    #[inline]
    pub(crate) fn set_mask(&self) -> u64 {
        self.set_mask
    }

    /// Associativity (ways per set).
    #[inline]
    pub(crate) fn assoc(&self) -> usize {
        self.assoc
    }

    /// Current LRU tick.
    #[inline]
    pub(crate) fn tick(&self) -> u64 {
        self.tick
    }

    /// Overwrite the LRU tick.
    #[inline]
    pub(crate) fn set_tick(&mut self, tick: u64) {
        self.tick = tick;
    }

    /// Raw `(tag, version, stamp)` of way `idx` (flat index: `set * assoc + way`).
    #[inline]
    pub(crate) fn way(&self, idx: usize) -> (u64, u32, u64) {
        let w = &self.ways[idx];
        (w.tag, w.version, w.stamp)
    }

    /// Overwrite way `idx` (flat index) with the given raw fields.
    #[inline]
    pub(crate) fn set_way(&mut self, idx: usize, tag: u64, version: u32, stamp: u64) {
        self.ways[idx] = Way {
            tag,
            version,
            stamp,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways = 8 lines of 128 B => capacity 1 KB.
        SetAssocCache::new(CacheConfig {
            capacity: 1024,
            ways: 2,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::origin_l1().sets(), 128);
        assert_eq!(CacheConfig::origin_l2().sets(), 16384);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.probe(42, 0), Probe::Miss);
        c.fill(42, 0);
        assert_eq!(c.probe(42, 0), Probe::Hit);
    }

    #[test]
    fn version_mismatch_is_stale() {
        let mut c = tiny();
        c.fill(42, 0);
        assert_eq!(c.probe(42, 1), Probe::Stale);
        // Refill at the new version restores hits.
        c.fill(42, 1);
        assert_eq!(c.probe(42, 1), Probe::Hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, 0);
        c.fill(4, 0);
        assert_eq!(c.probe(0, 0), Probe::Hit); // touch 0: now 4 is LRU
        let evicted = c.fill(8, 0);
        assert_eq!(evicted, Some(4));
        assert_eq!(c.probe(0, 0), Probe::Hit);
        assert_eq!(c.probe(4, 0), Probe::Miss);
        assert_eq!(c.probe(8, 0), Probe::Hit);
    }

    #[test]
    fn fill_same_tag_does_not_evict() {
        let mut c = tiny();
        c.fill(0, 0);
        c.fill(4, 0);
        assert_eq!(c.fill(0, 3), None);
        assert_eq!(c.probe(0, 3), Probe::Hit);
        assert_eq!(c.probe(4, 0), Probe::Hit);
    }

    #[test]
    fn invalidate() {
        let mut c = tiny();
        c.fill(1, 0);
        c.fill(2, 0);
        assert!(c.invalidate_line(1));
        assert!(!c.invalidate_line(1));
        assert_eq!(c.probe(1, 0), Probe::Miss);
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.probe(2, 0), Probe::Miss);
    }

    #[test]
    fn refresh_version_keeps_writers_copy_fresh() {
        let mut c = tiny();
        c.fill(7, 0);
        c.refresh_version(7, 5);
        assert_eq!(c.probe(7, 5), Probe::Hit);
    }
}
