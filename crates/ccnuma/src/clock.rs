//! Simulated global clock.
//!
//! The machine advances region by region: simulated CPUs accumulate local
//! time while a parallel region executes; when the `omp` runtime closes the
//! region, the machine folds the per-CPU times (plus the contention
//! correction) into this single global clock. Sequential program sections and
//! charged overheads (page migrations, fork/join, barriers) advance the clock
//! directly.

/// Monotone simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GlobalClock {
    now_ns: f64,
}

impl GlobalClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time, ns.
    #[inline]
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Current simulated time, seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ns * 1e-9
    }

    /// Advance by `ns` (must be non-negative and finite).
    #[inline]
    pub fn advance(&mut self, ns: f64) {
        debug_assert!(ns.is_finite() && ns >= 0.0, "bad clock advance {ns}");
        self.now_ns += ns;
    }

    /// Reset to zero (machine reuse between experiments).
    pub fn reset(&mut self) {
        self.now_ns = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = GlobalClock::new();
        assert_eq!(c.now_ns(), 0.0);
        c.advance(100.0);
        c.advance(0.5);
        assert_eq!(c.now_ns(), 100.5);
        assert!((c.now_secs() - 100.5e-9).abs() < 1e-18);
        c.reset();
        assert_eq!(c.now_ns(), 0.0);
    }
}
