//! Fat-hypercube interconnect topology of the SGI Origin2000.
//!
//! The Origin2000 groups two dual-processor nodes on each router; routers
//! form a binary hypercube ("fat hypercube ... with two nodes on each edge",
//! paper §2). Hop distance between two nodes is therefore:
//!
//! * `0` — same node (local memory),
//! * `1` — different node, same router,
//! * `1 + hamming(router_a, router_b)` — different routers.
//!
//! For the paper's 16-processor runs (8 nodes, 4 routers in a 2-cube) the
//! maximum distance is 3 hops, matching Table 1 of the paper.

/// Identifier of a NUMA node (a memory module plus its local processors).
pub type NodeId = usize;

/// Interconnect topology: nodes, processors per node, and router layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    nodes: usize,
    cpus_per_node: usize,
    nodes_per_router: usize,
}

impl Topology {
    /// Build a fat-hypercube topology.
    ///
    /// # Panics
    /// Panics if `nodes` or `cpus_per_node` is zero, or if the router count
    /// implied by `nodes` is not a power of two (required for a hypercube).
    pub fn fat_hypercube(nodes: usize, cpus_per_node: usize) -> Self {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(
            cpus_per_node > 0,
            "topology needs at least one CPU per node"
        );
        let nodes_per_router = 2usize.min(nodes);
        let routers = nodes.div_ceil(nodes_per_router);
        assert!(
            routers.is_power_of_two(),
            "router count {routers} must be a power of two for a hypercube"
        );
        Self {
            nodes,
            cpus_per_node,
            nodes_per_router,
        }
    }

    /// The Origin2000 configuration used in the paper: 8 nodes x 2 CPUs.
    pub fn origin2000_16p() -> Self {
        Self::fat_hypercube(8, 2)
    }

    /// Number of NUMA nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of processors on each node.
    #[inline]
    pub fn cpus_per_node(&self) -> usize {
        self.cpus_per_node
    }

    /// Total processor count.
    #[inline]
    pub fn cpus(&self) -> usize {
        self.nodes * self.cpus_per_node
    }

    /// The node that hosts a given CPU. CPUs are numbered consecutively
    /// within nodes: CPUs `2k` and `2k+1` live on node `k` (for 2 CPUs/node).
    #[inline]
    pub fn node_of_cpu(&self, cpu: usize) -> NodeId {
        debug_assert!(cpu < self.cpus());
        cpu / self.cpus_per_node
    }

    /// CPU ids hosted on `node`.
    pub fn cpus_of_node(&self, node: NodeId) -> impl Iterator<Item = usize> {
        let base = node * self.cpus_per_node;
        base..base + self.cpus_per_node
    }

    /// Router that a node hangs off.
    #[inline]
    pub fn router_of_node(&self, node: NodeId) -> usize {
        node / self.nodes_per_router
    }

    /// Network hop distance between two nodes (0 = local).
    #[inline]
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        debug_assert!(a < self.nodes && b < self.nodes);
        if a == b {
            return 0;
        }
        let ra = self.router_of_node(a);
        let rb = self.router_of_node(b);
        1 + (ra ^ rb).count_ones()
    }

    /// Maximum hop distance in this topology.
    pub fn diameter(&self) -> u32 {
        if self.nodes <= 1 {
            return 0;
        }
        let routers = self.nodes.div_ceil(self.nodes_per_router);
        // 1 hop to leave the local router, plus the hypercube dimension.
        1 + routers.trailing_zeros()
    }

    /// Nodes sorted by distance from `from` (closest first, `from` itself
    /// first of all). Ties broken by node id, so the order is deterministic.
    /// Used by the best-effort migration fallback in the VM subsystem.
    pub fn nodes_by_distance(&self, from: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = (0..self.nodes).collect();
        v.sort_by_key(|&n| (self.hops(from, n), n));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_16p_shape() {
        let t = Topology::origin2000_16p();
        assert_eq!(t.nodes(), 8);
        assert_eq!(t.cpus(), 16);
        assert_eq!(t.node_of_cpu(0), 0);
        assert_eq!(t.node_of_cpu(1), 0);
        assert_eq!(t.node_of_cpu(15), 7);
    }

    #[test]
    fn hop_distances_match_table1_range() {
        let t = Topology::origin2000_16p();
        // local
        assert_eq!(t.hops(0, 0), 0);
        // same router (nodes 0,1 share router 0)
        assert_eq!(t.hops(0, 1), 1);
        // one router hop (routers 0 and 1 differ in one bit)
        assert_eq!(t.hops(0, 2), 2);
        // two router hops (routers 0 and 3 differ in two bits)
        assert_eq!(t.hops(0, 6), 3);
        // symmetric
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
        // max distance is 3 hops on the 16p machine, as in Table 1
        let max = (0..8)
            .flat_map(|a| (0..8).map(move |b| (a, b)))
            .map(|(a, b)| t.hops(a, b))
            .max()
            .unwrap();
        assert_eq!(max, 3);
    }

    #[test]
    fn nodes_by_distance_is_sorted_and_complete() {
        let t = Topology::origin2000_16p();
        for from in 0..8 {
            let order = t.nodes_by_distance(from);
            assert_eq!(order.len(), 8);
            assert_eq!(order[0], from);
            for w in order.windows(2) {
                assert!(t.hops(from, w[0]) <= t.hops(from, w[1]));
            }
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn single_node_topology() {
        let t = Topology::fat_hypercube(1, 4);
        assert_eq!(t.cpus(), 4);
        assert_eq!(t.hops(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_router_count_panics() {
        let _ = Topology::fat_hypercube(6, 2);
    }
}
