//! The Origin2000 memory latency model — Table 1 of the paper.
//!
//! | Level              | Distance in hops | Contented latency (ns) |
//! |--------------------|------------------|------------------------|
//! | L1 cache           | 0                | 5.5                    |
//! | L2 cache           | 0                | 56.9                   |
//! | local memory       | 0                | 329                    |
//! | remote memory      | 1                | 564                    |
//! | remote memory      | 2                | 759                    |
//! | remote memory      | 3                | 862                    |
//!
//! Beyond three hops the paper states that "for each additional hop ... the
//! memory latency is increased by 100 to 200 ns"; we extrapolate linearly at
//! the observed 3-hop increment (103 ns/hop).
//!
//! The model is parameterized so the experiment harness can sweep the
//! remote-to-local latency ratio — the paper's central architectural claim is
//! that the low (~2:1) ratio of the Origin2000 is what makes balanced page
//! placement schemes competitive, and that "the impact of page placement
//! would be more significant on ccNUMA architectures with higher remote
//! memory access latencies".

/// Per-level access latencies, in nanoseconds of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// L1 hit latency.
    pub l1_ns: f64,
    /// L2 hit latency.
    pub l2_ns: f64,
    /// Local-memory (0-hop) latency.
    pub local_ns: f64,
    /// Remote latencies indexed by `hops - 1`; the last entry is extended by
    /// `per_extra_hop_ns` for each hop beyond the table.
    pub remote_ns: Vec<f64>,
    /// Extrapolation increment for hops beyond `remote_ns`.
    pub per_extra_hop_ns: f64,
}

impl LatencyModel {
    /// Table 1 of the paper (16-processor Origin2000).
    pub fn origin2000() -> Self {
        Self {
            l1_ns: 5.5,
            l2_ns: 56.9,
            local_ns: 329.0,
            remote_ns: vec![564.0, 759.0, 862.0],
            per_extra_hop_ns: 103.0,
        }
    }

    /// A hypothetical machine with a higher remote:local ratio, used by the
    /// ablation study of the paper's "low latency ratio" argument. `ratio`
    /// scales the *remote penalty* so that a 1-hop access costs
    /// `local_ns * ratio`, with the same per-hop slope shape as Table 1.
    pub fn with_remote_ratio(ratio: f64) -> Self {
        assert!(ratio >= 1.0, "remote:local ratio must be >= 1");
        let base = Self::origin2000();
        let one_hop = base.local_ns * ratio;
        // Preserve Table 1's relative per-hop growth (759/564, 862/564).
        let scale = one_hop / base.remote_ns[0];
        Self {
            remote_ns: base.remote_ns.iter().map(|r| r * scale).collect(),
            per_extra_hop_ns: base.per_extra_hop_ns * scale,
            ..base
        }
    }

    /// Latency of a memory access that crosses `hops` network hops.
    #[inline]
    pub fn memory_ns(&self, hops: u32) -> f64 {
        if hops == 0 {
            return self.local_ns;
        }
        let idx = hops as usize - 1;
        match self.remote_ns.get(idx) {
            Some(&ns) => ns,
            None => {
                let last = *self.remote_ns.last().expect("remote table non-empty");
                let extra = (idx + 1 - self.remote_ns.len()) as f64;
                last + extra * self.per_extra_hop_ns
            }
        }
    }

    /// Remote-to-local latency ratio at one hop.
    pub fn remote_local_ratio(&self) -> f64 {
        self.memory_ns(1) / self.local_ns
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::origin2000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let m = LatencyModel::origin2000();
        assert_eq!(m.l1_ns, 5.5);
        assert_eq!(m.l2_ns, 56.9);
        assert_eq!(m.memory_ns(0), 329.0);
        assert_eq!(m.memory_ns(1), 564.0);
        assert_eq!(m.memory_ns(2), 759.0);
        assert_eq!(m.memory_ns(3), 862.0);
    }

    #[test]
    fn extrapolates_beyond_three_hops() {
        let m = LatencyModel::origin2000();
        assert_eq!(m.memory_ns(4), 862.0 + 103.0);
        assert_eq!(m.memory_ns(5), 862.0 + 206.0);
    }

    #[test]
    fn paper_ratio_is_low() {
        // Paper: "ratio of remote to local memory access latency ranges
        // between 2:1 and 3:1"; at one hop it is < 2:1.
        let m = LatencyModel::origin2000();
        let r = m.remote_local_ratio();
        assert!(r > 1.5 && r < 2.0, "ratio {r}");
        assert!(m.memory_ns(3) / m.local_ns < 3.0);
    }

    #[test]
    fn ratio_sweep_scales_remote_only() {
        let m = LatencyModel::with_remote_ratio(4.0);
        assert_eq!(m.local_ns, 329.0);
        assert!((m.memory_ns(1) - 329.0 * 4.0).abs() < 1e-9);
        // Shape preserved: 2-hop/1-hop ratio identical to Table 1.
        let base = LatencyModel::origin2000();
        let shape = base.memory_ns(2) / base.memory_ns(1);
        assert!((m.memory_ns(2) / m.memory_ns(1) - shape).abs() < 1e-12);
    }
}
