//! Write-invalidate coherence directory.
//!
//! The Origin2000 keeps caches coherent with a directory-based protocol. The
//! simulator approximates it with a flat per-line *version* table: a write to
//! a line by any CPU bumps the line's version, so every other CPU's cached
//! copy (tagged with the version it loaded) becomes stale and its next access
//! is a coherence miss serviced from memory. This reproduces the sharing
//! effects the paper depends on — in particular page-level **false sharing**,
//! which causes pages to "bounce between two nodes in consecutive iterations"
//! and is what UPMlib's page-freezing heuristic exists for — without a full
//! MESI state machine.
//!
//! Versions are `AtomicU32` with relaxed ordering: the simulator executes
//! simulated CPUs sequentially, so the atomics are for API soundness (shared
//! `&Directory` across CPU contexts), not for cross-thread synchronization.

use std::sync::atomic::{AtomicU32, Ordering};

/// Per-line version table covering the simulated virtual address space.
#[derive(Debug)]
pub struct Directory {
    versions: Vec<AtomicU32>,
}

impl Directory {
    /// Create a directory covering `lines` cache lines of address space.
    pub fn new(lines: usize) -> Self {
        let mut versions = Vec::with_capacity(lines);
        versions.resize_with(lines, || AtomicU32::new(0));
        Self { versions }
    }

    /// Number of lines covered.
    pub fn lines(&self) -> usize {
        self.versions.len()
    }

    /// Current version of `line`.
    #[inline(always)]
    pub fn version(&self, line: u64) -> u32 {
        self.versions[line as usize].load(Ordering::Relaxed)
    }

    /// Record a write to `line`; returns the new version.
    #[inline(always)]
    pub fn write(&self, line: u64) -> u32 {
        self.versions[line as usize].fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Reset all versions (test helper; also used when reusing a machine).
    pub fn reset(&self) {
        for v in &self.versions {
            v.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_start_at_zero_and_increment() {
        let d = Directory::new(16);
        assert_eq!(d.version(3), 0);
        assert_eq!(d.write(3), 1);
        assert_eq!(d.write(3), 2);
        assert_eq!(d.version(3), 2);
        assert_eq!(d.version(4), 0);
    }

    #[test]
    fn reset_clears() {
        let d = Directory::new(4);
        d.write(0);
        d.write(1);
        d.reset();
        assert_eq!(d.version(0), 0);
        assert_eq!(d.version(1), 0);
    }
}
