//! Write-invalidate coherence directory.
//!
//! The Origin2000 keeps caches coherent with a directory-based protocol. The
//! simulator approximates it with a flat per-line *version* table: a write to
//! a line by any CPU bumps the line's version, so every other CPU's cached
//! copy (tagged with the version it loaded) becomes stale and its next access
//! is a coherence miss serviced from memory. This reproduces the sharing
//! effects the paper depends on — in particular page-level **false sharing**,
//! which causes pages to "bounce between two nodes in consecutive iterations"
//! and is what UPMlib's page-freezing heuristic exists for — without a full
//! MESI state machine.
//!
//! Versions are a dense `Vec<u32>`: the simulator executes simulated CPUs
//! sequentially, and the machine owns the directory exclusively, so writes
//! go through `&mut self` — no per-access atomic read-modify-write on the
//! hottest path of the whole simulator. The [`Directory::bump`] entry point
//! lets the phase fast path (see [`crate::fastpath`]) apply a region's worth
//! of write traffic to a line in one add.

/// Per-line version table covering the simulated virtual address space.
#[derive(Debug)]
pub struct Directory {
    versions: Vec<u32>,
    /// Total writes ever applied (sum of all version bumps). The phase fast
    /// path validates a recorded region's aggregate write traffic against
    /// this in O(1) instead of scanning the whole footprint.
    writes: u64,
}

impl Directory {
    /// Create a directory covering `lines` cache lines of address space.
    pub fn new(lines: usize) -> Self {
        Self {
            versions: vec![0; lines],
            writes: 0,
        }
    }

    /// Number of lines covered.
    pub fn lines(&self) -> usize {
        self.versions.len()
    }

    /// Current version of `line`.
    #[inline(always)]
    pub fn version(&self, line: u64) -> u32 {
        self.versions[line as usize]
    }

    /// Total writes ever recorded (via [`Directory::write`] or
    /// [`Directory::bump`]).
    #[inline]
    pub fn total_writes(&self) -> u64 {
        self.writes
    }

    /// Record a write to `line`; returns the new version.
    #[inline(always)]
    pub fn write(&mut self, line: u64) -> u32 {
        self.writes += 1;
        let v = &mut self.versions[line as usize];
        *v = v.wrapping_add(1);
        *v
    }

    /// Apply `count` writes to `line` in one step — exactly equivalent to
    /// `count` calls to [`Directory::write`]. Used by the phase fast path to
    /// replay a region's directory traffic in bulk.
    #[inline]
    pub fn bump(&mut self, line: u64, count: u32) {
        self.writes += u64::from(count);
        let v = &mut self.versions[line as usize];
        *v = v.wrapping_add(count);
    }

    /// Reset all versions (test helper; also used when reusing a machine).
    pub fn reset(&mut self) {
        self.versions.fill(0);
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_start_at_zero_and_increment() {
        let mut d = Directory::new(16);
        assert_eq!(d.version(3), 0);
        assert_eq!(d.write(3), 1);
        assert_eq!(d.write(3), 2);
        assert_eq!(d.version(3), 2);
        assert_eq!(d.version(4), 0);
    }

    #[test]
    fn reset_clears() {
        let mut d = Directory::new(4);
        d.write(0);
        d.write(1);
        d.reset();
        assert_eq!(d.version(0), 0);
        assert_eq!(d.version(1), 0);
    }

    #[test]
    fn bump_matches_repeated_writes() {
        let mut a = Directory::new(4);
        let mut b = Directory::new(4);
        for _ in 0..7 {
            a.write(2);
        }
        b.bump(2, 7);
        assert_eq!(a.version(2), b.version(2));
        b.bump(2, 0);
        assert_eq!(b.version(2), 7, "zero bump is a no-op");
        // Wrapping behaviour matches write's wrapping_add.
        let mut c = Directory::new(1);
        c.bump(0, u32::MAX);
        c.write(0);
        assert_eq!(c.version(0), 0);
    }
}
