//! Memory-module contention model.
//!
//! The paper attributes much of the worst-case placement penalty to
//! contention: *"All processors except the ones on the node that hosts the
//! data are contending to access the memory modules of one node throughout
//! the execution of the program."* A latency-only model misses this, so the
//! simulator applies a queueing correction per parallel region:
//!
//! 1. While a region executes, each CPU tallies, per home node, how many
//!    memory accesses it issued there and how much base stall time they cost.
//! 2. When the region closes, each node's utilization is estimated as
//!    `u_n = (accesses_to_n * service_ns) / T_0`, where `T_0` is the region's
//!    uncorrected duration (max over CPUs).
//! 3. Every access to node `n` is charged an extra M/M/1-style queueing delay
//!    `service_ns * u_n / (1 - u_n)` (utilization capped below 1).
//! 4. The region's wall time is the max over CPUs of their corrected times.
//!
//! The model is deterministic and deliberately coarse: it only needs to make
//! one overloaded memory module expensive and balanced traffic nearly free,
//! which is exactly the asymmetry the paper's Figure 1 exhibits.

/// Tunables of the contention model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionConfig {
    /// Memory-module occupancy per access, ns. The Origin2000 Hub + SDRAM
    /// pipeline sustained roughly one access per ~100 ns per module.
    pub service_ns: f64,
    /// Utilization cap (queueing delay explodes as u -> 1).
    pub max_utilization: f64,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        Self {
            service_ns: 100.0,
            max_utilization: 0.95,
        }
    }
}

/// Per-CPU accounting accumulated during one parallel region.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CpuRegionAccount {
    /// Simulated compute time in the region, ns.
    pub compute_ns: f64,
    /// Cache-hit stall time (not subject to node contention), ns.
    pub cache_ns: f64,
    /// Base memory stall per home node, ns.
    pub stall_by_node: Vec<f64>,
    /// Memory access count per home node.
    pub accesses_by_node: Vec<u64>,
    /// Total access latency accumulated this region, ns — the per-region
    /// staging buffer for the run-cumulative `CpuStats::stall_ns`, folded in
    /// at `end_region`. Not part of [`CpuRegionAccount::base_ns`] (it would
    /// double-count `cache_ns` and `stall_by_node`); unlike `cache_ns` it
    /// excludes page-fault service time, matching what `touch` returns.
    pub stall_ns: f64,
}

impl CpuRegionAccount {
    /// Empty account for a machine with `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            compute_ns: 0.0,
            cache_ns: 0.0,
            stall_by_node: vec![0.0; nodes],
            accesses_by_node: vec![0; nodes],
            stall_ns: 0.0,
        }
    }

    /// Uncorrected busy time of this CPU.
    pub fn base_ns(&self) -> f64 {
        self.compute_ns + self.cache_ns + self.stall_by_node.iter().sum::<f64>()
    }

    /// Zero all fields (reused between regions without reallocating).
    pub fn clear(&mut self) {
        self.compute_ns = 0.0;
        self.cache_ns = 0.0;
        self.stall_by_node.iter_mut().for_each(|v| *v = 0.0);
        self.accesses_by_node.iter_mut().for_each(|v| *v = 0);
        self.stall_ns = 0.0;
    }
}

/// Result of closing a region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionTiming {
    /// Corrected wall time of the region, ns.
    pub wall_ns: f64,
    /// Uncorrected wall time (max base CPU time), ns.
    pub base_ns: f64,
    /// Per-node utilization estimates.
    pub utilization: Vec<f64>,
    /// Per-CPU corrected busy times, ns.
    pub cpu_ns: Vec<f64>,
}

/// The contention model itself (stateless apart from its config).
#[derive(Debug, Clone, Copy, Default)]
pub struct ContentionModel {
    config: ContentionConfig,
}

impl ContentionModel {
    /// Model with the given tunables.
    pub fn new(config: ContentionConfig) -> Self {
        Self { config }
    }

    /// Fold per-CPU region accounts into a corrected region time.
    pub fn close_region(&self, accounts: &[CpuRegionAccount], nodes: usize) -> RegionTiming {
        let base_ns = accounts
            .iter()
            .map(CpuRegionAccount::base_ns)
            .fold(0.0, f64::max);
        // Idle region (no work at all): nothing to correct.
        if base_ns <= 0.0 {
            return RegionTiming {
                wall_ns: 0.0,
                base_ns: 0.0,
                utilization: vec![0.0; nodes],
                cpu_ns: vec![0.0; accounts.len()],
            };
        }
        let mut node_accesses = vec![0u64; nodes];
        for acct in accounts {
            for (n, &a) in acct.accesses_by_node.iter().enumerate() {
                node_accesses[n] += a;
            }
        }
        let utilization: Vec<f64> = node_accesses
            .iter()
            .map(|&a| {
                ((a as f64 * self.config.service_ns) / base_ns).min(self.config.max_utilization)
            })
            .collect();
        let extra_per_access: Vec<f64> = utilization
            .iter()
            .map(|&u| self.config.service_ns * u / (1.0 - u))
            .collect();
        let cpu_ns: Vec<f64> = accounts
            .iter()
            .map(|acct| {
                let extra: f64 = acct
                    .accesses_by_node
                    .iter()
                    .zip(&extra_per_access)
                    .map(|(&a, &e)| a as f64 * e)
                    .sum();
                acct.base_ns() + extra
            })
            .collect();
        let wall_ns = cpu_ns.iter().copied().fold(0.0, f64::max);
        RegionTiming {
            wall_ns,
            base_ns,
            utilization,
            cpu_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct(
        nodes: usize,
        compute: f64,
        node: usize,
        accesses: u64,
        stall: f64,
    ) -> CpuRegionAccount {
        let mut a = CpuRegionAccount::new(nodes);
        a.compute_ns = compute;
        a.accesses_by_node[node] = accesses;
        a.stall_by_node[node] = stall;
        a
    }

    #[test]
    fn empty_region_is_free() {
        let m = ContentionModel::default();
        let t = m.close_region(&[CpuRegionAccount::new(4)], 4);
        assert_eq!(t.wall_ns, 0.0);
    }

    #[test]
    fn balanced_traffic_barely_penalized() {
        let m = ContentionModel::default();
        // 4 CPUs, each hitting its own node with light traffic.
        let accounts: Vec<_> = (0..4)
            .map(|n| acct(4, 90_000.0, n, 100, 10_000.0))
            .collect();
        let t = m.close_region(&accounts, 4);
        // u = 100*100/100_000 = 0.1 -> extra ~11 ns/access -> ~1.1% inflation.
        assert!(
            t.wall_ns < t.base_ns * 1.03,
            "wall {} base {}",
            t.wall_ns,
            t.base_ns
        );
    }

    #[test]
    fn single_hot_node_is_heavily_penalized() {
        let m = ContentionModel::default();
        // 8 CPUs all hammering node 0.
        let accounts: Vec<_> = (0..8)
            .map(|_| acct(8, 50_000.0, 0, 600, 50_000.0))
            .collect();
        let t = m.close_region(&accounts, 8);
        // u = 4800*100/100_000 capped at 0.95 -> extra = 1900 ns/access.
        assert!(t.utilization[0] > 0.9);
        assert!(
            t.wall_ns > t.base_ns * 2.0,
            "wall {} base {}",
            t.wall_ns,
            t.base_ns
        );
    }

    #[test]
    fn hot_node_worse_than_spread_same_traffic() {
        let m = ContentionModel::default();
        let hot: Vec<_> = (0..8)
            .map(|_| acct(8, 50_000.0, 0, 300, 30_000.0))
            .collect();
        let spread: Vec<_> = (0..8)
            .map(|c| acct(8, 50_000.0, c, 300, 30_000.0))
            .collect();
        let t_hot = m.close_region(&hot, 8);
        let t_spread = m.close_region(&spread, 8);
        assert!(t_hot.wall_ns > t_spread.wall_ns);
    }

    #[test]
    fn utilization_is_capped() {
        let m = ContentionModel::new(ContentionConfig {
            service_ns: 100.0,
            max_utilization: 0.9,
        });
        let accounts = vec![acct(2, 0.0, 0, 1_000_000, 1000.0)];
        let t = m.close_region(&accounts, 2);
        assert!(t.utilization[0] <= 0.9 + 1e-12);
        assert!(t.wall_ns.is_finite());
    }
}
