//! Property-based tests of the machine's building blocks.

use ccnuma::{
    AccessKind, CacheConfig, LatencyModel, Machine, MachineConfig, SetAssocCache, Topology,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn topology_hops_is_a_metric(nodes_log in 0u32..4, a in 0usize..16, b in 0usize..16, c in 0usize..16) {
        let nodes = 1usize << nodes_log;
        let t = Topology::fat_hypercube(nodes, 2);
        let a = a % nodes;
        let b = b % nodes;
        let c = c % nodes;
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(t.hops(a, a), 0);
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
        prop_assert!(t.hops(a, b) <= t.diameter());
    }

    #[test]
    fn latency_is_monotone_in_hops(hops in 0u32..10) {
        let m = LatencyModel::origin2000();
        prop_assert!(m.memory_ns(hops + 1) > m.memory_ns(hops));
    }

    #[test]
    fn ratio_scaled_latency_is_monotone_in_ratio(
        r1 in 1.0f64..10.0,
        delta in 0.1f64..5.0,
        hops in 1u32..6,
    ) {
        let a = LatencyModel::with_remote_ratio(r1);
        let b = LatencyModel::with_remote_ratio(r1 + delta);
        prop_assert!(b.memory_ns(hops) > a.memory_ns(hops));
        prop_assert_eq!(a.memory_ns(0), b.memory_ns(0));
    }

    #[test]
    fn cache_probe_after_fill_hits_same_version(
        lines in proptest::collection::vec((0u64..1024, 0u32..8), 1..200),
    ) {
        // Whatever interleaving of fills happens, a probe immediately after
        // a fill with the same version must hit; and occupancy never
        // exceeds capacity.
        let config = CacheConfig { capacity: 2048, ways: 2 };
        let mut cache = SetAssocCache::new(config);
        let capacity_lines = config.capacity / 128;
        for (line, version) in lines {
            cache.fill(line, version);
            prop_assert_eq!(cache.probe(line, version), ccnuma::cache::Probe::Hit);
            prop_assert!(cache.occupancy() <= capacity_lines);
        }
    }

    #[test]
    fn cache_never_hits_with_a_newer_version(
        line in 0u64..64,
        v1 in 0u32..100,
        bump in 1u32..100,
    ) {
        let mut cache = SetAssocCache::new(CacheConfig { capacity: 1024, ways: 2 });
        cache.fill(line, v1);
        // If the directory version moved on, the cached copy must never be
        // served as a hit.
        prop_assert_ne!(cache.probe(line, v1 + bump), ccnuma::cache::Probe::Hit);
    }

    #[test]
    fn touch_costs_are_one_of_the_hierarchy_levels(
        accesses in proptest::collection::vec((0usize..8, 0u64..(64 * 128), any::<bool>()), 1..300),
    ) {
        let mut machine = Machine::new(MachineConfig::tiny_test());
        let base = machine.reserve_vspace(64 * ccnuma::PAGE_SIZE);
        let latencies = [5.5, 56.9, 329.0, 564.0, 759.0, 862.0];
        for (cpu, line, write) in accesses {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let ns = machine.touch(cpu, base + line * 128, kind);
            prop_assert!(
                latencies.iter().any(|&l| (ns - l).abs() < 1e-9),
                "unexpected latency {ns}"
            );
        }
    }

    #[test]
    fn clock_only_moves_forward(
        ops in proptest::collection::vec((0usize..8, 0u64..1024, any::<bool>()), 1..100),
    ) {
        let mut machine = Machine::new(MachineConfig::tiny_test());
        let base = machine.reserve_vspace(16 * ccnuma::PAGE_SIZE);
        let mut last = machine.clock().now_ns();
        machine.begin_region();
        for (cpu, off, write) in ops {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            machine.touch(cpu, base + off * 128, kind);
        }
        machine.end_region();
        prop_assert!(machine.clock().now_ns() >= last);
        last = machine.clock().now_ns();
        // A real (non-no-op) migration also advances time.
        let vp = ccnuma::vpage_of(base);
        if let Some(home) = machine.node_of_vpage(vp) {
            let target = (home + 1) % machine.topology().nodes();
            machine.migrate_page(vp, target).unwrap();
            prop_assert!(machine.clock().now_ns() > last);
        }
    }

    #[test]
    fn region_wall_time_bounds_each_cpu(
        work in proptest::collection::vec(1u64..10_000, 8),
    ) {
        // Wall time of a region is at least every CPU's own busy time and
        // at most their sum.
        let mut machine = Machine::new(MachineConfig::tiny_test());
        machine.begin_region();
        for (cpu, &flops) in work.iter().enumerate() {
            machine.compute(cpu, flops);
        }
        let timing = machine.end_region();
        let each: Vec<f64> = work.iter().map(|&f| f as f64 * 2.0).collect();
        let max = each.iter().copied().fold(0.0, f64::max);
        let sum: f64 = each.iter().sum();
        prop_assert!(timing.wall_ns >= max - 1e-9);
        prop_assert!(timing.wall_ns <= sum + 1e-9);
    }
}
