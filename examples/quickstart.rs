//! Quickstart: build a simulated Origin2000, run an OpenMP-style parallel
//! loop under a deliberately bad page placement, and watch UPMlib repair it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ccnuma::{Machine, MachineConfig, SimArray};
use omp::{Runtime, Schedule};
use upmlib::{UpmEngine, UpmOptions};
use vmm::{install_placement, PlacementScheme};

fn main() {
    // A 16-processor Origin2000-like machine (8 nodes x 2 CPUs) with caches
    // scaled to the workload size (see DESIGN.md).
    let mut machine = Machine::new(MachineConfig::origin2000_16p_scaled());

    // Worst-case placement: every page the program faults lands on node 0,
    // "the allocation performed by a buddy system" (paper §2.1).
    install_placement(&mut machine, PlacementScheme::WorstCase { node: 0 });

    let mut rt = Runtime::new(machine);

    // One shared array, 64 pages worth of f64s.
    let n = 64 * (ccnuma::PAGE_SIZE as usize / 8);
    let data = SimArray::new(rt.machine_mut(), "data", n, 1.0f64);

    // UPMlib: register the hot array, as the paper's compiler pass would.
    let mut upm = UpmEngine::new(rt.machine(), UpmOptions::default());
    upm.memrefcnt(&data);

    println!(
        "machine: {} CPUs on {} nodes",
        rt.machine().cpus(),
        rt.machine().topology().nodes()
    );
    println!("placement policy: {}", rt.machine().placer_name());
    println!();

    // An iterative parallel computation: each thread repeatedly sweeps its
    // block of the array (a static schedule pins blocks to threads).
    for step in 0..6 {
        let t0 = rt.machine().clock().now_secs();
        rt.parallel_for(n, Schedule::Static, |par, i| {
            par.update(&data, i, |v| 0.5 * (v + 1.0));
            par.flops(2);
        });
        let iter_time = rt.machine().clock().now_secs() - t0;

        // The paper's Figure 2 protocol: migrate while the engine finds work.
        let moved = if upm.is_active() {
            upm.migrate_memory(rt.machine_mut())
        } else {
            0
        };
        let stats = rt.machine().aggregate_cpu_stats();
        println!(
            "step {step}: {:.3} ms simulated, {} pages migrated, remote fraction so far {:.1}%",
            iter_time * 1e3,
            moved,
            stats.remote_fraction() * 100.0
        );
    }

    let stats = upm.stats();
    println!();
    println!(
        "UPMlib moved {} pages total ({}% in its first invocation) and is now {}",
        stats.total_distribution_migrations(),
        (stats.first_invocation_fraction() * 100.0) as u32,
        if upm.is_active() {
            "still armed"
        } else {
            "self-deactivated"
        }
    );
    println!(
        "total simulated time: {:.3} ms",
        rt.machine().clock().now_secs() * 1e3
    );
}
