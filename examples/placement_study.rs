//! Placement study: run one NAS benchmark under all four page-placement
//! schemes of the paper, with and without the IRIX kernel migration engine,
//! and print a Figure-1-style comparison.
//!
//! ```text
//! cargo run --release --example placement_study [bt|sp|cg|mg|ft]
//! ```

use nas::{BenchName, EngineMode, RunConfig, Scale};
use vmm::{KernelMigrationConfig, PlacementScheme};
use xp::run_one;

fn main() {
    let bench = match std::env::args().nth(1).as_deref() {
        Some("bt") => BenchName::Bt,
        Some("sp") => BenchName::Sp,
        Some("cg") | None => BenchName::Cg,
        Some("mg") => BenchName::Mg,
        Some("ft") => BenchName::Ft,
        Some(other) => {
            eprintln!("unknown benchmark '{other}' (expected bt|sp|cg|mg|ft)");
            std::process::exit(2);
        }
    };
    println!("NAS {} (scaled), 16 simulated processors", bench.label());
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "config", "time (s)", "vs ft-IRIX", "remote %"
    );

    let mut baseline = None;
    for placement in PlacementScheme::all(20000) {
        for engine in [
            EngineMode::None,
            EngineMode::IrixMig(KernelMigrationConfig::default()),
        ] {
            let cfg = RunConfig {
                placement: placement.clone(),
                engine,
                ..RunConfig::paper_default()
            };
            let r = run_one(bench, Scale::Small, &cfg);
            assert!(r.verification.passed, "{} failed verification", r.label());
            let base = *baseline.get_or_insert(r.total_secs);
            println!(
                "{:<14} {:>12.4} {:>+11.1}% {:>9.1}%",
                r.label(),
                r.total_secs,
                (r.total_secs / base - 1.0) * 100.0,
                r.remote_fraction * 100.0
            );
        }
    }
    println!();
    println!("ft = first-touch, rr = round-robin, rand = random, wc = worst-case (buddy);");
    println!("IRIX = no migration, IRIXmig = kernel competitive migration engine.");
}
