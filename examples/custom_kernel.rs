//! Custom kernel: write your own OpenMP-style computation against the
//! public API — a 2-D five-point Jacobi smoother — and compare first-touch
//! against round-robin placement on it, with and without UPMlib.
//!
//! This is the "bring your own application" path a downstream user of the
//! library would follow; no `nas` crate involved.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use ccnuma::{Machine, MachineConfig, SimArray};
use omp::{Runtime, Schedule};
use upmlib::{UpmEngine, UpmOptions};
use vmm::{install_placement, PlacementScheme};

const N: usize = 512; // grid edge; one row = 4 KB, four rows per page
const STEPS: usize = 48;

/// One Jacobi sweep: `dst[y][x] = 0.25 * (left + right + up + down)`,
/// parallel over rows (static schedule = row-block partitioning).
fn sweep(rt: &mut Runtime, src: &SimArray<f64>, dst: &SimArray<f64>) {
    rt.parallel_for(N, Schedule::Static, |par, y| {
        for x in 0..N {
            let up = if y > 0 {
                par.get(src, (y - 1) * N + x)
            } else {
                0.0
            };
            let down = if y + 1 < N {
                par.get(src, (y + 1) * N + x)
            } else {
                0.0
            };
            let left = if x > 0 {
                par.get(src, y * N + x - 1)
            } else {
                0.0
            };
            let right = if x + 1 < N {
                par.get(src, y * N + x + 1)
            } else {
                0.0
            };
            par.set(dst, y * N + x, 0.25 * (up + down + left + right));
            par.flops(4);
        }
    });
}

fn run(placement: PlacementScheme, with_upmlib: bool) -> (f64, f64, f64) {
    let mut machine = Machine::new(MachineConfig::origin2000_16p_scaled());
    install_placement(&mut machine, placement);
    let mut rt = Runtime::new(machine);
    let a = SimArray::from_fn(rt.machine_mut(), "a", N * N, |i| (i % 7) as f64);
    let b = SimArray::new(rt.machine_mut(), "b", N * N, 0.0f64);
    let mut upm = UpmEngine::new(rt.machine(), UpmOptions::default());
    upm.memrefcnt(&a);
    upm.memrefcnt(&b);

    // Cold start (discarded), as the NAS codes do for first-touch.
    sweep(&mut rt, &a, &b);
    upm.reset_counters(rt.machine());

    let t0 = rt.machine().clock().now_secs();
    let mut last_step = 0.0;
    for step in 0..STEPS {
        let s0 = rt.machine().clock().now_secs();
        if step % 2 == 0 {
            sweep(&mut rt, &a, &b);
        } else {
            sweep(&mut rt, &b, &a);
        }
        last_step = rt.machine().clock().now_secs() - s0;
        if with_upmlib && upm.is_active() {
            upm.migrate_memory(rt.machine_mut());
        }
    }
    let elapsed = rt.machine().clock().now_secs() - t0;
    // A checksum so the computation cannot be optimized away and runs can
    // be compared for identical numerics.
    let checksum: f64 = (0..N * N).step_by(101).map(|i| a.peek(i)).sum();
    (elapsed, last_step, checksum)
}

fn main() {
    println!("5-point Jacobi, {N}x{N} grid, {STEPS} sweeps, 16 simulated CPUs");
    println!(
        "{:<22} {:>12} {:>15} {:>12}",
        "config", "total (ms)", "last step (ms)", "checksum"
    );
    let mut checksums = Vec::new();
    for (label, placement, upmlib) in [
        ("first-touch", PlacementScheme::FirstTouch, false),
        ("round-robin", PlacementScheme::RoundRobin, false),
        ("round-robin + upmlib", PlacementScheme::RoundRobin, true),
    ] {
        let (secs, last, checksum) = run(placement, upmlib);
        checksums.push(checksum);
        println!(
            "{:<22} {:>12.3} {:>15.3} {:>12.4}",
            label,
            secs * 1e3,
            last * 1e3,
            checksum
        );
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "page placement must never change the numerics"
    );
    println!();
    println!("identical checksums: placement changes time, never results.");
    println!("(the 'last step' column shows the steady state once UPMlib has settled)");
}
