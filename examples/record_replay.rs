//! Record–replay walkthrough: instrument NAS BT exactly as the paper's
//! Figure 3 does, printing what the mechanism records, schedules, replays
//! and undoes at each step of the time loop.
//!
//! ```text
//! cargo run --release --example record_replay
//! ```

use ccnuma::{Machine, MachineConfig};
use nas::bt::{Bt, BtConfig};
use nas::common::{NasBenchmark, PhasePoint};
use nas::Scale;
use omp::Runtime;
use upmlib::{UpmEngine, UpmOptions};
use vmm::{install_placement, PlacementScheme};

fn main() {
    let mut machine = Machine::new(MachineConfig::origin2000_16p_scaled());
    install_placement(&mut machine, PlacementScheme::FirstTouch);
    let mut rt = Runtime::new(machine);
    let mut bt = Bt::with_config(
        &mut rt,
        BtConfig {
            niter: 5,
            ..BtConfig::for_scale(Scale::Small)
        },
    );
    // The paper sets the critical-page budget to 20.
    let mut upm = UpmEngine::new(rt.machine(), UpmOptions::paper_recrep());
    bt.register_hot(&mut upm);

    println!("NAS BT with the paper's Figure 3 instrumentation:");
    println!("  do step = 1, niter");
    println!("    compute_rhs; x_solve; y_solve; [record|replay]; z_solve; [record]; add");
    println!("    step 1: upmlib_migrate_memory   (data distribution)");
    println!("    step 2: upmlib_record x2 + upmlib_compare_counters");
    println!("    step>2: upmlib_replay before z_solve, upmlib_undo at end");
    println!();

    bt.cold_start(&mut rt);
    upm.reset_counters(rt.machine());

    for step in 0..bt.iterations() {
        let t0 = rt.machine().clock().now_secs();
        match step {
            0 => {
                let mut noop = |_: &mut Runtime, _: PhasePoint| {};
                bt.iterate(&mut rt, &mut noop);
                let moved = upm.migrate_memory(rt.machine_mut());
                println!("step 1: distribution pass migrated {moved} pages");
            }
            1 => {
                let engine = &mut upm;
                let mut hook = |rt: &mut Runtime, pp: PhasePoint| {
                    engine.record(rt.machine());
                    println!("        recorded counters at {pp:?}");
                };
                bt.iterate(&mut rt, &mut hook);
                let scheduled = upm.compare_counters();
                println!(
                    "step 2: compare_counters scheduled {scheduled} migrations per iteration \
                     (lists {:?})",
                    upm.replay_list_sizes()
                );
            }
            _ => {
                let engine = &mut upm;
                let mut replayed = 0;
                {
                    let replayed = &mut replayed;
                    let mut hook = |rt: &mut Runtime, pp: PhasePoint| {
                        if matches!(pp, PhasePoint::Before(_)) {
                            *replayed += engine.replay(rt.machine_mut());
                        }
                    };
                    bt.iterate(&mut rt, &mut hook);
                }
                let undone = upm.undo(rt.machine_mut());
                println!(
                    "step {}: replayed {replayed} pages before z_solve, undid {undone} after",
                    step + 1
                );
            }
        }
        println!(
            "        iteration took {:.3} ms simulated",
            (rt.machine().clock().now_secs() - t0) * 1e3
        );
    }

    let v = bt.verify();
    let s = upm.stats();
    println!();
    println!(
        "verification: {} (update norm {:.3e} from {:.3e})",
        if v.passed { "PASSED" } else { "FAILED" },
        v.value,
        v.reference
    );
    println!(
        "record-replay moved {} pages total, costing {:.3} ms of on-critical-path migration time",
        s.total_recrep_migrations(),
        s.recrep_ns * 1e-6
    );
}
