//! Umbrella crate for the SC'00 "Is Data Distribution Necessary in OpenMP?"
//! reproduction. Re-exports the workspace crates so examples and integration
//! tests can use a single dependency.
//!
//! The stack, bottom to top:
//!
//! * [`ccnuma`] — a deterministic simulated ccNUMA machine (Origin2000-like):
//!   caches, coherence, NUMA latencies, per-page hardware reference counters,
//!   memory-module contention.
//! * [`vmm`] — an IRIX-like virtual memory subsystem: page placement policies
//!   (first-touch, round-robin, random, worst-case/buddy), MLDs, a migration
//!   syscall, and the kernel's competitive page migration engine.
//! * [`omp`] — an OpenMP-like fork/join runtime with worksharing schedules.
//! * [`upmlib`] — the paper's contribution: a user-level page migration
//!   engine that emulates data distribution and (via record–replay) data
//!   redistribution.
//! * [`nas`] — OpenMP-style NAS benchmark kernels (BT, SP, CG, MG, FT).
//! * [`xp`] — the experiment harness that regenerates every table and figure.

pub use ccnuma;
pub use nas;
pub use omp;
pub use upmlib;
pub use vmm;
pub use xp;
