#!/usr/bin/env python3
"""CI-side telemetry scrape for a running `xp serve` instance.

Speaks the raw ddnomp-svc JSONL protocol (no client binary needed):

1. Asserts the JSON `metrics` snapshot (written earlier by
   `xp top --json`) shows a positive cache-hit ratio — the warm sweep
   must actually have hit the cache.
2. Scrapes the `metrics` op in Prometheus text exposition format,
   validates every line against the exposition grammar (comment/TYPE
   lines, `name value` samples, monotone cumulative histogram buckets
   ending in `+Inf`), and writes the text to the given output path.
3. Sends a `shutdown` op so the server exits gracefully and flushes its
   span files.

Usage: scrape_telemetry.py ADDR METRICS_JSON PROM_OUT
"""

import json
import socket
import sys


def request(addr, frame):
    """One connection: consume the hello, send `frame`, return the reply."""
    host, port = addr.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=10) as sock:
        reader = sock.makefile("r", encoding="utf-8")
        hello = json.loads(reader.readline())
        assert hello["event"] == "hello", hello
        sock.sendall((json.dumps(frame) + "\n").encode())
        line = reader.readline()
        return json.loads(line) if line else None


def check_hit_ratio(metrics_json):
    counters = json.load(open(metrics_json))["metrics"]["counters"]
    hits = counters.get("svc.cache.hits", 0)
    misses = counters.get("svc.cache.misses", 0)
    ratio = hits / max(1, hits + misses)
    print(f"cache: {hits} hits, {misses} misses, hit ratio {ratio:.2f}")
    assert hits > 0 and ratio > 0, "warm sweep produced no cache hits"


def check_prometheus(text):
    """Validate `text` against the Prometheus text exposition format."""
    samples = 0
    buckets = {}  # histogram name -> last cumulative count seen
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        float(value)  # every sample value must parse as a float
        samples += 1
        name = name_part.split("{", 1)[0]
        assert name[0].isalpha() or name[0] in "_:", f"bad metric name: {line}"
        assert all(c.isalnum() or c in "_:" for c in name), f"bad name: {line}"
        if name.endswith("_bucket"):
            prev = buckets.get(name, 0.0)
            assert float(value) >= prev, f"non-monotone bucket: {line}"
            buckets[name] = float(value)
            if 'le="+Inf"' in name_part:
                del buckets[name]  # series complete
    assert not buckets, f"histograms missing +Inf bucket: {sorted(buckets)}"
    assert samples > 0, "empty exposition"
    print(f"prometheus exposition: {samples} samples, all parsed")


def main():
    addr, metrics_json, prom_out = sys.argv[1:4]
    check_hit_ratio(metrics_json)
    reply = request(addr, {"op": "metrics", "format": "prometheus"})
    assert reply["event"] == "metrics", reply
    assert reply["format"] == "prometheus", reply
    check_prometheus(reply["text"])
    with open(prom_out, "w") as f:
        f.write(reply["text"])
    request(addr, {"op": "shutdown"})
    print("server asked to shut down")


if __name__ == "__main__":
    main()
